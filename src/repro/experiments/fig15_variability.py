"""Figure 15 — peak load distribution under traffic variability.

100 time-varying traffic matrices (empirical-CDF perturbations of the
gravity mean) are evaluated against provisioning calibrated on the
*mean* matrix, for four architectures: Ingress, Path-No-Replicate,
DC-Only (Path-Replicate), and DC + one-hop. The paper's shape: the
replication architectures dominate; the no-replication worst cases
blow well past load 1, while replication keeps even the maximum tamed
(order-of-magnitude reduction). The paper also notes Path-Augmented's
worst case is ~4x worse than the replication architectures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.architectures import ArchitectureEvaluator, ArchitectureKind
from repro.experiments.common import (
    evaluation_topologies,
    format_table,
    full_scale,
    quartiles,
    setup_topology,
)
from repro.traffic.gravity import classes_from_matrix
from repro.traffic.variability import TrafficVariabilityModel

FIG15_ARCHITECTURES = (
    ArchitectureKind.INGRESS,
    ArchitectureKind.PATH_NO_REPLICATE,
    ArchitectureKind.PATH_REPLICATE,      # "DC Only"
    ArchitectureKind.DC_PLUS_ONE_HOP,
)


@dataclass
class Fig15Row:
    """One (topology, architecture) peak-load distribution."""

    topology: str
    architecture: ArchitectureKind
    summary: Dict[str, float]  # min/q25/median/q75/max


def _fig15_topology(args) -> List[Fig15Row]:
    """One topology's full matrix sweep (a picklable sweep point).

    The matrix RNG is seeded per topology, so evaluating topologies in
    parallel produces exactly the rows the sequential loop does.
    """
    (name, kinds, num_matrices, dc_capacity_factor, max_link_load,
     seed) = args
    setup = setup_topology(name)
    evaluator = ArchitectureEvaluator(
        setup.topology, setup.classes,
        dc_capacity_factor=dc_capacity_factor,
        max_link_load=max_link_load)
    model = TrafficVariabilityModel.default()
    rng = np.random.default_rng(seed)
    matrices = model.generate_matrices(setup.matrix, num_matrices, rng)
    peaks: Dict[ArchitectureKind, List[float]] = {
        kind: [] for kind in kinds}
    for matrix in matrices:
        classes = classes_from_matrix(setup.topology, matrix,
                                      setup.routing)
        for kind in kinds:
            result = evaluator.evaluate(kind, classes=classes)
            peaks[kind].append(result.load_cost)
    return [Fig15Row(name, kind, quartiles(peaks[kind]))
            for kind in kinds]


def run_fig15(topologies: Optional[Sequence[str]] = None,
              num_matrices: Optional[int] = None,
              include_augmented: bool = False,
              dc_capacity_factor: float = 10.0,
              max_link_load: float = 0.4,
              seed: int = 15,
              jobs: Optional[int] = None) -> List[Fig15Row]:
    """Evaluate peak load across time-varying matrices.

    Args:
        num_matrices: how many varying matrices (paper: 100); the quick
            default is 12, full scale uses 100.
        include_augmented: also evaluate PATH_AUGMENTED (the paper's
            "4x worse worst-case" aside).
        jobs: fan topologies across worker processes (``--jobs`` on
            the CLI); row order and contents match the serial run.
    """
    if num_matrices is None:
        num_matrices = 100 if full_scale() else 12
    if topologies is None:
        # 100 matrices x 4+ architectures is expensive on the largest
        # ISPs; at full scale sweep the first four topologies (which
        # already span 11-41 PoPs) and all eight can be requested
        # explicitly.
        topologies = (evaluation_topologies()[:4] if full_scale()
                      else evaluation_topologies(quick_count=2))
    kinds = list(FIG15_ARCHITECTURES)
    if include_augmented:
        kinds.append(ArchitectureKind.PATH_AUGMENTED)

    from repro.experiments.parallel import ParallelSweepRunner

    points = [(name, kinds, num_matrices, dc_capacity_factor,
               max_link_load, seed) for name in topologies]
    per_topology = ParallelSweepRunner(jobs).map(_fig15_topology,
                                                 points)
    return [row for rows in per_topology for row in rows]


def format_fig15(rows: Sequence[Fig15Row]) -> str:
    headers = ["Topology", "Architecture", "min", "q25", "median",
               "q75", "max"]
    body = [[r.topology, r.architecture.value] +
            [f"{r.summary[k]:.3f}"
             for k in ("min", "q25", "median", "q75", "max")]
            for r in rows]
    return format_table(
        headers, body,
        title="Figure 15: peak load under traffic variability")
