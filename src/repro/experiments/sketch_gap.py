"""Sketch-estimation error vs LP optimality (the estimator gap).

The streaming estimator (:mod:`repro.ingest` + :mod:`repro.sketch`)
feeds the controller count-min *estimates* instead of exact traffic
matrices. This experiment quantifies what that costs. For each
topology it

- solves the replication LP on the **exact** calibrated matrix (the
  oracle LoadCost);
- synthesizes a sampled epoch trace, streams it through an
  :class:`~repro.ingest.daemon.IngestDaemon` chunk by chunk at each
  sketch width in the sweep, solves the LP on the resulting
  estimates, and then **evaluates that assignment under the true
  volumes** with the paper's Eq (3) load accounting — the realized
  LoadCost an operator would actually see;
- reports the relative **gap** of realized vs oracle LoadCost, the
  L1/Linf estimate error, and the sketch bytes-of-state per point.

A trace sample is itself an estimator, so the series also carries the
``sampling_gap`` — the gap when the LP is solved on the *exact*
per-class counts of the same sampled trace — which separates
irreducible sampling error from sketch collision error.

The sweep's gap is published on the ``sketch.gap`` gauge. Everything
except wall-clock solve latency is deterministic for a given seed.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.controller import GlobalPlanner
from repro.core.inputs import NetworkState
from repro.core.mirrors import MirrorPolicy
from repro.core.results import ReplicationResult
from repro.experiments.common import format_table, setup_topology
from repro.ingest import IngestDaemon
from repro.obs import get_registry
from repro.simulation.tracegen import TraceGenerator, TraceSpec
from repro.simulation.tracestore import ChunkedReplay

DEFAULT_WIDTHS: Tuple[int, ...] = (512, 1024, 2048, 4096)
DEFAULT_DEPTH = 4
DEFAULT_TOPOLOGIES: Tuple[str, ...] = ("tinet",)
DEFAULT_SESSIONS = 6000
DEFAULT_CHUNK_PACKETS = 512
DEFAULT_MIRROR = "dc"
DEFAULT_DC_CAPACITY_FACTOR = 1.0

_MIRRORS = {
    "none": MirrorPolicy.none,
    "dc": MirrorPolicy.datacenter,
    "one-hop": lambda: MirrorPolicy.neighbors(1),
    "two-hop": lambda: MirrorPolicy.neighbors(2),
    "dc+one-hop": lambda: MirrorPolicy.datacenter_plus_neighbors(1),
}


def realized_load_cost(state: NetworkState,
                       result: ReplicationResult) -> float:
    """Eq (3) LoadCost of an assignment under *this* state's volumes.

    The LP may have optimized against estimated volumes; charging its
    ``p``/``o`` fractions with the true per-class work reveals the
    load an operator actually experiences. ``("process", j)`` charges
    node ``j``; offloads charge the mirror — the LP's own accounting.
    """
    worst = 0.0
    for resource in state.resources:
        loads = {node: 0.0 for node in state.nids_nodes}
        for cls in state.classes:
            work = cls.footprint(resource) * cls.num_sessions
            if work == 0.0:
                continue
            fractions = result.process_fractions.get(cls.name, {})
            for node, fraction in fractions.items():
                loads[node] += fraction * work / state.capacity(
                    resource, node)
            offloads = result.offload_fractions.get(cls.name, {})
            for (_, mirror), fraction in offloads.items():
                loads[mirror] += fraction * work / state.capacity(
                    resource, mirror)
        if loads:
            worst = max(worst, max(loads.values()))
    return worst


@dataclass
class SketchGapPoint:
    """One sketch width's row of the estimator-gap curve."""

    width: int
    depth: int
    state_bytes: int
    bytes_per_class: float
    load_cost: float
    realized_load_cost: float
    gap: float
    error_l1_rel: float
    error_linf: float
    solve_wall_seconds: float

    def to_dict(self) -> Dict:
        return {
            "width": self.width,
            "depth": self.depth,
            "state_bytes": self.state_bytes,
            "bytes_per_class": self.bytes_per_class,
            "load_cost": self.load_cost,
            "realized_load_cost": self.realized_load_cost,
            "gap": self.gap,
            "error_l1_rel": self.error_l1_rel,
            "error_linf": self.error_linf,
            "solve_wall_seconds": self.solve_wall_seconds,
        }


@dataclass
class SketchGapSeries:
    """One topology's sketch-driven vs exact-matrix comparison."""

    topology: str
    mirror: str
    max_link_load: float
    seed: int
    sessions: int
    chunk_packets: int
    num_classes: int
    oracle_load_cost: float
    sampling_gap: float
    points: List[SketchGapPoint]

    def point(self, width: int) -> SketchGapPoint:
        for pt in self.points:
            if pt.width == width:
                return pt
        raise KeyError(f"no point for width {width}")

    def budget_point(self, bytes_per_class: float) -> SketchGapPoint:
        """The largest sketch that fits a per-class byte budget."""
        within = [pt for pt in self.points
                  if pt.bytes_per_class <= bytes_per_class]
        if not within:
            raise KeyError(
                f"no point within {bytes_per_class} B/class")
        return max(within, key=lambda pt: pt.state_bytes)

    def to_dict(self) -> Dict:
        return {
            "topology": self.topology,
            "mirror": self.mirror,
            "max_link_load": self.max_link_load,
            "seed": self.seed,
            "sessions": self.sessions,
            "chunk_packets": self.chunk_packets,
            "num_classes": self.num_classes,
            "oracle_load_cost": self.oracle_load_cost,
            "sampling_gap": self.sampling_gap,
            "points": [pt.to_dict() for pt in self.points],
        }


def _gap_one(name: str, widths: Sequence[int], depth: int,
             mirror: str, max_link_load: float,
             dc_capacity_factor: Optional[float], sessions: int,
             chunk_packets: int, seed: int,
             workers: int) -> SketchGapSeries:
    needs_dc = mirror in ("dc", "dc+one-hop")
    setup = setup_topology(
        name, dc_capacity_factor=dc_capacity_factor
        if needs_dc else None)
    state = setup.state
    classes = list(state.classes)
    class_names = [cls.name for cls in classes]
    total_volume = sum(cls.num_sessions for cls in classes)

    planner = GlobalPlanner(state,
                            mirror_policy=_MIRRORS[mirror](),
                            max_link_load=max_link_load)
    oracle = planner.plan(classes)
    oracle_cost = oracle.result.load_cost
    true_state = oracle.state

    # One sampled epoch trace shared by every sweep point.
    generator = TraceGenerator(
        state.topology.nodes, classes,
        spec=TraceSpec(total_sessions=sessions),
        seed=seed * 1009 + 7)
    batch = generator.generate_batch(state.nids_nodes,
                                     with_payloads=False,
                                     direct=True)
    scale = total_volume / sessions if sessions else 0.0
    class_id = np.asarray(batch.sessions.class_id)
    counts = np.bincount(class_id[class_id >= 0],
                         minlength=len(batch.sessions.class_names))
    exact = {cls_name: float(count) for cls_name, count in
             zip(batch.sessions.class_names, counts)}

    def gap_of(result: ReplicationResult) -> Tuple[float, float]:
        realized = realized_load_cost(true_state, result)
        gap = ((realized - oracle_cost) / oracle_cost
               if oracle_cost > 0 else 0.0)
        return gap, realized

    # Sampling floor: the LP on the trace's exact counts (no sketch).
    sampled_classes = [
        replace(cls, num_sessions=exact.get(cls.name, 0.0) * scale)
        for cls in classes]
    sampling_gap, _ = gap_of(planner.plan(sampled_classes).result)

    metrics = get_registry()
    points: List[SketchGapPoint] = []
    for width in widths:
        ingest = IngestDaemon(class_names, width=width, depth=depth,
                              seed=seed * 613 + 11, workers=workers)
        for chunk in ChunkedReplay(batch, chunk_packets):
            ingest.consume(chunk)
        snapshot = ingest.snapshot()
        errors = snapshot.estimate_errors(exact)
        estimated = snapshot.estimated_classes(classes, scale=scale)
        start = time.perf_counter()
        outcome = planner.plan(estimated)
        wall = time.perf_counter() - start
        gap, realized = gap_of(outcome.result)
        metrics.gauge("sketch.gap", gap)
        points.append(SketchGapPoint(
            width=width,
            depth=depth,
            state_bytes=snapshot.state_bytes,
            bytes_per_class=snapshot.state_bytes / len(classes),
            load_cost=outcome.result.load_cost,
            realized_load_cost=realized,
            gap=gap,
            error_l1_rel=errors["l1_rel"],
            error_linf=errors["linf"],
            solve_wall_seconds=wall))
    return SketchGapSeries(
        topology=name, mirror=mirror, max_link_load=max_link_load,
        seed=seed, sessions=sessions, chunk_packets=chunk_packets,
        num_classes=len(classes), oracle_load_cost=oracle_cost,
        sampling_gap=sampling_gap, points=points)


def run_sketch_gap(
        topologies: Optional[Sequence[str]] = None,
        widths: Sequence[int] = DEFAULT_WIDTHS,
        depth: int = DEFAULT_DEPTH,
        mirror: str = DEFAULT_MIRROR,
        max_link_load: float = 0.4,
        dc_capacity_factor: Optional[float] =
        DEFAULT_DC_CAPACITY_FACTOR,
        sessions: int = DEFAULT_SESSIONS,
        chunk_packets: int = DEFAULT_CHUNK_PACKETS,
        seed: int = 0,
        workers: int = 2) -> List[SketchGapSeries]:
    """Sweep sketch widths against the LoadCost-vs-oracle gap.

    Args:
        topologies: topology names (default tinet — many classes, so
            sketch collisions actually bite).
        widths: count-min widths to sweep (depth is fixed across the
            sweep; width is the memory/error knob).
        sessions: sampled sessions in the shared epoch trace.
        chunk_packets: slab size for the streaming ingest.
        workers: per-worker sketches merged OctoSketch-style.
    """
    if mirror not in _MIRRORS:
        raise ValueError(f"unknown mirror {mirror!r}; choose from "
                         f"{sorted(_MIRRORS)}")
    if not widths:
        raise ValueError("need at least one sketch width")
    for width in widths:
        if width < 1:
            raise ValueError("sketch widths must be >= 1")
    if depth < 1:
        raise ValueError("depth must be >= 1")
    if sessions < 1:
        raise ValueError("sessions must be >= 1")
    return [_gap_one(name, widths, depth, mirror, max_link_load,
                     dc_capacity_factor, sessions, chunk_packets,
                     seed, workers)
            for name in (topologies or DEFAULT_TOPOLOGIES)]


def sketch_gap_to_json(series: Sequence[SketchGapSeries],
                       indent: Optional[int] = 2) -> str:
    """The sweep as a JSON document (the CI artifact format)."""
    return json.dumps({
        "schema": 1,
        "experiment": "sketch-gap",
        "series": [s.to_dict() for s in series],
    }, indent=indent, sort_keys=True)


def format_sketch_gap(series: Sequence[SketchGapSeries]) -> str:
    blocks = []
    for entry in series:
        rows = []
        for pt in entry.points:
            rows.append([
                str(pt.width),
                str(pt.depth),
                f"{pt.state_bytes}",
                f"{pt.bytes_per_class:.0f}",
                f"{pt.load_cost:.4f}",
                f"{pt.realized_load_cost:.4f}",
                f"{100.0 * pt.gap:.2f}%",
                f"{100.0 * pt.error_l1_rel:.2f}%",
                f"{pt.solve_wall_seconds:.2f}s",
            ])
        blocks.append(format_table(
            ["Width", "Depth", "State", "B/class", "LP cost",
             "Realized", "Gap", "L1 err", "Wall"],
            rows,
            title=f"sketch estimator on {entry.topology} "
                  f"({entry.num_classes} classes, {entry.sessions} "
                  f"sampled sessions, oracle LoadCost "
                  f"{entry.oracle_load_cost:.4f}, sampling floor "
                  f"{100.0 * entry.sampling_gap:.2f}%)"))
    return "\n\n".join(blocks)
