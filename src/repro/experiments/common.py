"""Shared setup and formatting for the paper-experiment runners.

Every experiment follows the Section 8.2 conventions implemented in
:meth:`NetworkState.calibrated`; this module adds the pieces they all
share — building a topology's calibrated state, synthesizing
asymmetric-route class sets, and rendering aligned text tables like the
paper's.

Experiment sizes default to a "quick" scale that preserves every
qualitative shape while keeping a full benchmark run in minutes; set
the environment variable ``REPRO_SCALE=full`` to run at the paper's
full scale (all topologies, 100 variability matrices, 50 asymmetry
configurations per theta).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.inputs import NetworkState
from repro.topology.asymmetry import AsymmetricRoutingModel
from repro.topology.library import builtin_topology, builtin_topology_names
from repro.topology.routing import RoutingTable, shortest_path_routing
from repro.topology.topology import Topology
from repro.traffic.classes import TrafficClass
from repro.traffic.gravity import classes_from_matrix, gravity_traffic_matrix
from repro.traffic.matrix import TrafficMatrix


def full_scale() -> bool:
    """True when REPRO_SCALE=full — run at the paper's full scale."""
    return os.environ.get("REPRO_SCALE", "quick").lower() == "full"


def evaluation_topologies(quick_count: int = 4) -> List[str]:
    """Topology names to sweep: all eight at full scale, the first
    ``quick_count`` (spanning small to mid size) otherwise."""
    names = builtin_topology_names()
    return names if full_scale() else names[:quick_count]


@dataclass
class TopologySetup:
    """A topology with its gravity traffic and calibrated states."""

    topology: Topology
    routing: RoutingTable
    matrix: TrafficMatrix
    classes: List[TrafficClass]
    state: NetworkState


def setup_topology(name: str,
                   dc_capacity_factor: Optional[float] = None,
                   dc_anchor: Optional[str] = None,
                   total_sessions: Optional[float] = None
                   ) -> TopologySetup:
    """Build a topology + gravity traffic + calibrated state."""
    topology = builtin_topology(name)
    routing = shortest_path_routing(topology)
    matrix = gravity_traffic_matrix(topology, total_sessions)
    classes = classes_from_matrix(topology, matrix, routing)
    state = NetworkState.calibrated(
        topology, classes, dc_capacity_factor=dc_capacity_factor,
        dc_anchor=dc_anchor)
    return TopologySetup(topology, routing, matrix, classes, state)


def asymmetric_classes(setup: TopologySetup,
                       model: AsymmetricRoutingModel,
                       theta: float,
                       rng: np.random.Generator) -> List[TrafficClass]:
    """Classes whose routes follow one sampled asymmetry configuration.

    One bidirectional class per unordered ingress-egress pair: the
    forward direction takes the shortest path, the reverse takes the
    sampled overlap-targeted path (Section 8.3). Volumes merge both
    directions of the gravity matrix.
    """
    routes = {(r.source, r.target): r for r in model.generate(theta, rng)}
    classes = []
    for (source, target), route in sorted(routes.items()):
        volume = (setup.matrix.volume(source, target) +
                  setup.matrix.volume(target, source))
        if volume <= 0:
            continue
        classes.append(TrafficClass(
            name=f"{source}<->{target}",
            source=source, target=target,
            path=route.fwd_path,
            rev_path=route.rev_path,
            num_sessions=volume))
    return classes


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render an aligned text table (the benches print these)."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [max(len(headers[i]),
                  max((len(row[i]) for row in rendered), default=0))
              for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(row[i].ljust(widths[i])
                               for i in range(len(headers))))
    return "\n".join(lines)


def quartiles(values: Sequence[float]) -> Dict[str, float]:
    """Box-plot summary: min/q25/median/q75/max (Figure 15's whiskers)."""
    data = np.asarray(list(values), dtype=float)
    return {
        "min": float(data.min()),
        "q25": float(np.percentile(data, 25)),
        "median": float(np.percentile(data, 50)),
        "q75": float(np.percentile(data, 75)),
        "max": float(data.max()),
    }
