"""Ablations for the Section 9 extensions this library implements.

- **Slack provisioning** ("Robustness to dynamics"): compute the
  assignment from p80-inflated traffic instead of the mean and compare
  worst-case peak loads over time-varying matrices.
- **Piecewise link cost** (Section 4 extension): soft Fortz-Thorup
  link penalty vs the hard MaxLinkLoad bound.
- **NIPS rerouting** ("Extending to NIPS"): load reduction attainable
  when offloading must reroute, across latency budgets.
- **Combined replication+aggregation** ("Combining aggregation and
  replication"): objective improvement over pure aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.aggregation import AggregationProblem
from repro.core.combined import CombinedProblem
from repro.core.inputs import NetworkState
from repro.core.mirrors import MirrorPolicy
from repro.core.nips import NIPSProblem
from repro.core.replication import ReplicationProblem
from repro.core.robustness import slack_factor, with_slack
from repro.experiments.common import (
    evaluation_topologies,
    format_table,
    full_scale,
    setup_topology,
)
from repro.traffic.gravity import classes_from_matrix
from repro.traffic.variability import TrafficVariabilityModel


@dataclass
class SlackRow:
    """Worst-case peaks with mean vs p80 provisioning."""

    topology: str
    percentile: float
    worst_mean_provisioned: float
    worst_slack_provisioned: float

    @property
    def improvement(self) -> float:
        if self.worst_slack_provisioned == 0:
            return float("inf")
        return (self.worst_mean_provisioned /
                self.worst_slack_provisioned)


def run_slack_ablation(topologies: Optional[Sequence[str]] = None,
                       percentile: float = 80.0,
                       num_matrices: Optional[int] = None,
                       max_link_load: float = 0.4,
                       dc_capacity_factor: float = 10.0,
                       seed: int = 80) -> List[SlackRow]:
    """Compare mean- vs percentile-provisioned assignments under
    traffic variability.

    Both provisionings are *evaluated* on the same family of varying
    matrices; the slack variant computed its node/link budgets from
    inflated inputs, so bursts overshoot it less.
    """
    if num_matrices is None:
        num_matrices = 40 if full_scale() else 8
    model = TrafficVariabilityModel.default()
    factor = slack_factor(model, percentile)
    rows = []
    for name in topologies or evaluation_topologies(quick_count=2):
        setup = setup_topology(name)
        mean_state = NetworkState.calibrated(
            setup.topology, setup.classes,
            dc_capacity_factor=dc_capacity_factor)
        slack_state = NetworkState.calibrated(
            setup.topology, with_slack(setup.classes, factor),
            dc_capacity_factor=dc_capacity_factor)
        rng = np.random.default_rng(seed)
        matrices = model.generate_matrices(setup.matrix, num_matrices,
                                           rng)
        worst = {"mean": 0.0, "slack": 0.0}
        for matrix in matrices:
            classes = classes_from_matrix(setup.topology, matrix,
                                          setup.routing)
            for label, state in (("mean", mean_state),
                                 ("slack", slack_state)):
                result = ReplicationProblem(
                    state.with_traffic(classes),
                    mirror_policy=MirrorPolicy.datacenter(),
                    max_link_load=max_link_load).solve()
                worst[label] = max(worst[label], result.load_cost)
        rows.append(SlackRow(name, percentile, worst["mean"],
                             worst["slack"]))
    return rows


def format_slack(rows: Sequence[SlackRow]) -> str:
    body = [[r.topology, f"p{r.percentile:.0f}",
             f"{r.worst_mean_provisioned:.3f}",
             f"{r.worst_slack_provisioned:.3f}",
             f"{r.improvement:.2f}x"] for r in rows]
    return format_table(
        ["Topology", "Slack", "Worst (mean prov.)",
         "Worst (slack prov.)", "improvement"],
        body, title="Ablation: percentile slack provisioning (Sec 9)")


@dataclass
class LinkCostRow:
    """Hard MaxLinkLoad bound vs soft piecewise link penalty."""

    topology: str
    hard_load: float
    hard_worst_link: float
    soft_load: float
    soft_worst_link: float


def run_link_cost_ablation(topologies: Optional[Sequence[str]] = None,
                           max_link_load: float = 0.4,
                           dc_capacity_factor: float = 10.0,
                           link_cost_weight: float = 0.02
                           ) -> List[LinkCostRow]:
    """Section 4 extension: replace the hard link bound with the
    Fortz-Thorup penalty and compare load/link outcomes."""
    rows = []
    for name in topologies or evaluation_topologies(quick_count=2):
        setup = setup_topology(name,
                               dc_capacity_factor=dc_capacity_factor)
        hard = ReplicationProblem(
            setup.state, mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=max_link_load).solve()
        soft = ReplicationProblem(
            setup.state, mirror_policy=MirrorPolicy.datacenter(),
            link_cost_weight=link_cost_weight).solve()
        rows.append(LinkCostRow(
            topology=name,
            hard_load=hard.load_cost,
            hard_worst_link=max(hard.link_loads.values()),
            soft_load=soft.load_cost,
            soft_worst_link=max(soft.link_loads.values())))
    return rows


def format_link_cost(rows: Sequence[LinkCostRow]) -> str:
    body = [[r.topology, f"{r.hard_load:.3f}",
             f"{r.hard_worst_link:.3f}", f"{r.soft_load:.3f}",
             f"{r.soft_worst_link:.3f}"] for r in rows]
    return format_table(
        ["Topology", "Hard: load", "Hard: worst link",
         "Soft: load", "Soft: worst link"],
        body,
        title="Ablation: hard MaxLinkLoad vs piecewise link cost")


@dataclass
class NIPSRow:
    """NIDS replication vs NIPS rerouting at several latency budgets."""

    topology: str
    nids_load: float
    nips_loads: Dict[float, float]  # latency budget -> load


def run_nips_ablation(topologies: Optional[Sequence[str]] = None,
                      latency_budgets: Sequence[float] =
                      (0.0, 1.0, 2.0, 4.0),
                      max_link_load: float = 0.4,
                      dc_capacity_factor: float = 10.0
                      ) -> List[NIPSRow]:
    """How much of replication's benefit survives when offloading must
    reroute (NIPS) under increasingly strict latency budgets."""
    rows = []
    for name in topologies or evaluation_topologies(quick_count=2):
        setup = setup_topology(name,
                               dc_capacity_factor=dc_capacity_factor)
        nids = ReplicationProblem(
            setup.state, mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=max_link_load).solve()
        nips_loads = {}
        for budget in latency_budgets:
            result = NIPSProblem(
                setup.state, mirror_policy=MirrorPolicy.datacenter(),
                max_link_load=max_link_load,
                max_latency_penalty=budget).solve()
            nips_loads[budget] = result.load_cost
        rows.append(NIPSRow(name, nids.load_cost, nips_loads))
    return rows


def format_nips(rows: Sequence[NIPSRow]) -> str:
    budgets = sorted(rows[0].nips_loads)
    headers = (["Topology", "NIDS (replicate)"] +
               [f"NIPS ≤{b:g} hops" for b in budgets])
    body = [[r.topology, f"{r.nids_load:.3f}"] +
            [f"{r.nips_loads[b]:.3f}" for b in budgets] for r in rows]
    return format_table(headers, body,
                        title="Ablation: NIPS rerouting vs NIDS "
                              "replication")


@dataclass
class FailureRow:
    """Impact of failing the most loaded interior node."""

    topology: str
    failed_node: str
    load_before: float
    load_after: float
    lost_fraction: float
    rerouted_classes: int
    solve_seconds: float


def run_failure_ablation(topologies: Optional[Sequence[str]] = None,
                         max_link_load: float = 0.4,
                         dc_capacity_factor: float = 10.0
                         ) -> List[FailureRow]:
    """Fail each topology's busiest interior NIDS node and re-solve.

    Measures the operational story behind the min-max objective: how
    much headroom the replication architecture retains after losing
    its hottest node, and how quickly the controller can recompute.
    """
    from repro.core.failures import fail_node

    rows = []
    for name in topologies or evaluation_topologies(quick_count=2):
        setup = setup_topology(name,
                               dc_capacity_factor=dc_capacity_factor)
        before = ReplicationProblem(
            setup.state, mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=max_link_load).solve()
        interior = {node: load for node, load in
                    before.node_loads["cpu"].items()
                    if node != setup.state.dc_node}
        victim = max(interior, key=interior.get)
        try:
            state, impact = fail_node(setup.state, victim)
        except ValueError:
            # The busiest node is a cut vertex; skip rather than guess.
            continue
        after = ReplicationProblem(
            state, mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=max_link_load).solve()
        rows.append(FailureRow(
            topology=name, failed_node=victim,
            load_before=before.load_cost,
            load_after=after.load_cost,
            lost_fraction=impact.lost_fraction,
            rerouted_classes=len(impact.rerouted_classes),
            solve_seconds=after.stats.solve_seconds))
    return rows


def format_failures(rows: Sequence[FailureRow]) -> str:
    body = [[r.topology, r.failed_node, f"{r.load_before:.3f}",
             f"{r.load_after:.3f}", f"{r.lost_fraction:.1%}",
             r.rerouted_classes, f"{r.solve_seconds:.3f}"]
            for r in rows]
    return format_table(
        ["Topology", "Failed", "Load before", "Load after",
         "Traffic lost", "Rerouted", "Re-solve (s)"],
        body, title="Ablation: busiest-node failure and recovery")


@dataclass
class CombinedRow:
    """Pure aggregation vs combined replication+aggregation."""

    topology: str
    pure_objective: float
    combined_objective: float
    pure_load: float
    combined_load: float

    @property
    def objective_gain(self) -> float:
        if self.combined_objective == 0:
            return float("inf")
        return self.pure_objective / self.combined_objective


def run_combined_ablation(topologies: Optional[Sequence[str]] = None,
                          max_link_load: float = 0.4,
                          dc_capacity_factor: float = 10.0
                          ) -> List[CombinedRow]:
    """The Section 9 future-work formulation vs plain Figure 9."""
    rows = []
    for name in topologies or evaluation_topologies(quick_count=2):
        setup = setup_topology(name,
                               dc_capacity_factor=dc_capacity_factor)
        beta = AggregationProblem(setup.state).suggested_beta()
        pure = AggregationProblem(setup.state, beta=beta).solve()
        combined = CombinedProblem(setup.state, beta=beta,
                                   max_link_load=max_link_load).solve()
        rows.append(CombinedRow(
            topology=name,
            pure_objective=pure.objective,
            combined_objective=combined.objective,
            pure_load=pure.load_cost,
            combined_load=combined.load_cost))
    return rows


def format_combined(rows: Sequence[CombinedRow]) -> str:
    body = [[r.topology, f"{r.pure_objective:.4f}",
             f"{r.combined_objective:.4f}",
             f"{r.pure_load:.3f}", f"{r.combined_load:.3f}",
             f"{r.objective_gain:.2f}x"] for r in rows]
    return format_table(
        ["Topology", "Pure objective", "Combined objective",
         "Pure load", "Combined load", "gain"],
        body,
        title="Ablation: combined replication+aggregation (Sec 9)")
