"""Figure 18 — aggregation's compute/communication tradeoff over beta.

Sweeps the communication-cost weight beta in the Section 6 objective
and plots, per topology, normalized ``CommCost`` against normalized
``LoadCost`` (each normalized by its maximum observed value over the
sweep). The paper's shape: the curves bow toward the origin — for many
topologies some beta attains both costs below ~40% of their maxima.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.aggregation import AggregationProblem
from repro.experiments.common import (
    evaluation_topologies,
    format_table,
    setup_topology,
)


@dataclass
class Fig18Series:
    """One topology's tradeoff curve."""

    topology: str
    betas: List[float]
    load_costs: List[float]
    comm_costs: List[float]

    @property
    def normalized_points(self) -> List[Tuple[float, float]]:
        """(normalized load, normalized comm) per beta."""
        max_load = max(self.load_costs) or 1.0
        max_comm = max(self.comm_costs) or 1.0
        return [(l / max_load, c / max_comm)
                for l, c in zip(self.load_costs, self.comm_costs)]

    def best_beta(self) -> float:
        """Beta whose normalized point is closest to the origin (the
        paper's per-topology pick for Figure 19)."""
        distances = [l * l + c * c for l, c in self.normalized_points]
        return self.betas[int(np.argmin(distances))]

    def best_point(self) -> Tuple[float, float]:
        points = self.normalized_points
        distances = [l * l + c * c for l, c in points]
        return points[int(np.argmin(distances))]


def beta_sweep_values(base_beta: float,
                      num_points: int = 9) -> List[float]:
    """Log-spaced multipliers around the scale-matching beta."""
    multipliers = np.logspace(-3, 3, num_points)
    return [float(base_beta * m) for m in multipliers]


def run_fig18(topologies: Optional[Sequence[str]] = None,
              num_points: int = 9) -> List[Fig18Series]:
    """Sweep beta per topology and record both cost terms."""
    series = []
    for name in topologies or evaluation_topologies():
        setup = setup_topology(name)
        problem = AggregationProblem(setup.state)
        base = problem.suggested_beta()
        betas = beta_sweep_values(base, num_points)
        loads, comms = [], []
        # Each sweep step rewrites only the beta-scaled objective
        # coefficients of the compiled LP and re-solves warm.
        for beta in betas:
            result = problem.resolve(beta=beta)
            loads.append(result.load_cost)
            comms.append(result.comm_cost)
        series.append(Fig18Series(name, betas, loads, comms))
    return series


def format_fig18(series: Sequence[Fig18Series]) -> str:
    rows = []
    for s in series:
        best_load, best_comm = s.best_point()
        rows.append([s.topology, f"{s.best_beta():.3g}",
                     f"{best_load:.3f}", f"{best_comm:.3f}"])
    return format_table(
        ["Topology", "best beta", "norm load @best", "norm comm @best"],
        rows,
        title="Figure 18: aggregation tradeoff (point nearest origin)")
