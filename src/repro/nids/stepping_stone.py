"""Stepping-stone detection (Figure 4's second motivating analysis).

An attacker relays through an intermediate host: an inbound connection
into the stone and a correlated outbound connection to the victim.
Detection (Zhang & Paxson, USENIX Security'00) correlates flow pairs —
which requires *both* flows to be observed at one location. When the
two stages traverse non-intersecting paths (Figure 4), replication to
a common location is the only way to run this analysis; this module
provides the detector the replicated traffic feeds.

The correlation here is the classic timing heuristic simplified to
flow records: an inbound flow into host ``h`` and an outbound flow
from ``h`` are a stepping-stone candidate when their active intervals
overlap and their durations are similar.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.nids.engine import NIDSEngine


@dataclass(frozen=True)
class FlowRecord:
    """One observed flow with timing."""

    src_ip: int
    dst_ip: int
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("flow ends before it starts")

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "FlowRecord") -> bool:
        return self.start < other.end and other.start < self.end


@dataclass(frozen=True)
class StoneCandidate:
    """A correlated inbound/outbound pair through one host."""

    stone_ip: int
    inbound: FlowRecord
    outbound: FlowRecord


class SteppingStoneDetector(NIDSEngine):
    """Correlates inbound and outbound flows per potential stone.

    Args:
        duration_tolerance: relative duration mismatch allowed between
            the two stages (relayed sessions have similar lifetimes).
        min_duration: ignore very short flows (interactive relay
            sessions are long-lived; this suppresses noise).
    """

    def __init__(self, duration_tolerance: float = 0.25,
                 min_duration: float = 1.0,
                 per_session_cost: float = 20.0) -> None:
        super().__init__(per_session_cost, per_byte_cost=0.0)
        if not 0.0 <= duration_tolerance <= 1.0:
            raise ValueError("duration_tolerance must be in [0, 1]")
        if min_duration < 0:
            raise ValueError("min_duration must be non-negative")
        self.duration_tolerance = duration_tolerance
        self.min_duration = min_duration
        self._inbound: Dict[int, List[FlowRecord]] = {}
        self._outbound: Dict[int, List[FlowRecord]] = {}

    def observe_flow(self, record: FlowRecord) -> None:
        """Index one flow by both of its endpoints."""
        self._charge((record.src_ip, record.dst_ip, record.start), 0.0)
        self._inbound.setdefault(record.dst_ip, []).append(record)
        self._outbound.setdefault(record.src_ip, []).append(record)

    def _correlated(self, inbound: FlowRecord,
                    outbound: FlowRecord) -> bool:
        if inbound.duration < self.min_duration or \
                outbound.duration < self.min_duration:
            return False
        if not inbound.overlaps(outbound):
            return False
        longer = max(inbound.duration, outbound.duration)
        if longer == 0:
            return False
        mismatch = abs(inbound.duration - outbound.duration) / longer
        return mismatch <= self.duration_tolerance

    def candidates(self) -> List[StoneCandidate]:
        """All correlated inbound/outbound pairs observed here.

        Only hosts for which this location saw *both* stages can ever
        appear — the Figure 4 point: without replication to a common
        node, disjoint-path stages produce no candidates anywhere.
        """
        found = []
        for stone_ip, inbound_flows in self._inbound.items():
            outbound_flows = self._outbound.get(stone_ip, [])
            for inbound in inbound_flows:
                for outbound in outbound_flows:
                    if outbound.dst_ip == inbound.src_ip:
                        continue  # a reply, not a relay
                    if self._correlated(inbound, outbound):
                        found.append(StoneCandidate(
                            stone_ip, inbound, outbound))
        return found

    def flagged_stones(self) -> List[int]:
        """Hosts with at least one correlated relay pair."""
        return sorted({c.stone_ip for c in self.candidates()})

    def reset(self) -> None:
        super().reset()
        self._inbound = {}
        self._outbound = {}


def merge_detectors(detectors) -> SteppingStoneDetector:
    """Combine flow observations from several locations.

    Used to model replication: the union of what the mirror received
    from multiple nodes behaves like one detector that saw everything.
    """
    merged = SteppingStoneDetector()
    for detector in detectors:
        for flows in detector._inbound.values():
            for record in flows:
                merged.observe_flow(record)
    return merged
