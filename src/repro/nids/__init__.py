"""Simulated NIDS analysis engines.

The paper runs unmodified Snort/Bro on top of the shim; the
reproduction replaces them with faithful, instrumented Python engines
covering the analysis types the paper reasons about:

- :class:`SignatureEngine` — per-session payload signature matching
  (Aho-Corasick multi-pattern search), the distributable analysis of
  Figure 2.
- :class:`ScanDetector` — per-source distinct-destination counting, the
  topologically-constrained analysis that aggregation unlocks
  (Sections 2, 6).
- :class:`StatefulSessionAnalyzer` — analysis requiring *both*
  directions of a session at one location (Section 5's motivation).
- :class:`ScanAggregator` — combines intermediate scan reports and
  applies the alert threshold only at the aggregation point
  (Section 7.3), preserving centralized semantics.

Every engine accounts its work in abstract *work units* (per-session
setup plus per-byte inspection) — the reproduction's stand-in for the
PAPI CPU instruction counts of Figure 10.
"""

from repro.nids.engine import EngineStats, NIDSEngine
from repro.nids.signature import AhoCorasick, SignatureEngine, SignatureMatch
from repro.nids.scan import ScanDetector
from repro.nids.stateful import StatefulSessionAnalyzer
from repro.nids.reports import (
    DestinationSetReport,
    FlowTupleReport,
    SourceCountReport,
)
from repro.nids.aggregator import (
    ScanAggregator,
    SplitStrategy,
    aggregate_reports,
    report_cost_record_hops,
)
from repro.nids.encoding import (
    ReportDecodeError,
    decode_report,
    encode_report,
    encoded_size,
)
from repro.nids.flood import FloodDetector
from repro.nids.stepping_stone import (
    FlowRecord,
    SteppingStoneDetector,
    StoneCandidate,
    merge_detectors,
)
from repro.nids.profiling import (
    CostModel,
    apply_cost_model,
    fit_cost_model,
    profile_engine,
)

__all__ = [
    "AhoCorasick",
    "CostModel",
    "DestinationSetReport",
    "ReportDecodeError",
    "apply_cost_model",
    "decode_report",
    "encode_report",
    "encoded_size",
    "fit_cost_model",
    "merge_detectors",
    "profile_engine",
    "EngineStats",
    "FloodDetector",
    "FlowRecord",
    "FlowTupleReport",
    "NIDSEngine",
    "ScanAggregator",
    "ScanDetector",
    "SignatureEngine",
    "SignatureMatch",
    "SteppingStoneDetector",
    "StoneCandidate",
    "SourceCountReport",
    "SplitStrategy",
    "StatefulSessionAnalyzer",
    "aggregate_reports",
    "report_cost_record_hops",
]
