"""Offline resource-footprint estimation (Section 3, input 2).

The optimizations need per-class per-session footprints ``F_c^r``. The
paper: "these values ... can be obtained either via NIDS vendors'
datasheets or estimated using offline benchmarks [Dreger et al.,
SIGMETRICS'08]", and "our approach can provide significant benefits
even with approximate estimates".

This module is that offline benchmark: run an engine over a sample
trace, record (sessions, bytes, work) observations, and fit the
two-coefficient cost model ``work = a * sessions + b * bytes`` by least
squares. :func:`apply_cost_model` then derives each class's
``F_c = a + b * Size_c`` so profiled numbers flow straight into the
formulations.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.simulation.packets import Session
from repro.traffic.classes import TrafficClass

Observation = Tuple[float, float, float]  # (sessions, bytes, work)


@dataclass(frozen=True)
class CostModel:
    """Fitted engine cost: work = per_session * S + per_byte * B."""

    per_session: float
    per_byte: float
    residual: float = 0.0  # RMS fit error, for sanity checks

    def footprint(self, session_bytes: float) -> float:
        """Expected work units for one session of a given size."""
        return self.per_session + self.per_byte * session_bytes

    def predict(self, sessions: float, total_bytes: float) -> float:
        return self.per_session * sessions + self.per_byte * total_bytes


def fit_cost_model(observations: Sequence[Observation]) -> CostModel:
    """Least-squares fit of the two-coefficient cost model.

    Args:
        observations: (session count, payload bytes, measured work)
            triples from benchmark batches; at least two linearly
            independent batches are needed.
    """
    if len(observations) < 2:
        raise ValueError("need at least two benchmark observations")
    matrix = np.array([[s, b] for s, b, _ in observations], dtype=float)
    target = np.array([w for _, _, w in observations], dtype=float)
    if np.linalg.matrix_rank(matrix) < 2:
        raise ValueError(
            "benchmark batches are degenerate (vary the mix of session "
            "count and bytes across batches)")
    coeffs, _, _, _ = np.linalg.lstsq(matrix, target, rcond=None)
    residual = float(np.sqrt(np.mean(
        (matrix @ coeffs - target) ** 2)))
    per_session = max(0.0, float(coeffs[0]))
    per_byte = max(0.0, float(coeffs[1]))
    return CostModel(per_session, per_byte, residual)


def profile_engine(engine_factory: Callable[[], object],
                   batches: Sequence[Sequence[Session]],
                   inspect=None) -> CostModel:
    """Benchmark an engine over session batches and fit its cost model.

    Args:
        engine_factory: builds a fresh engine per batch (so state does
            not leak across observations).
        batches: lists of :class:`Session` objects to replay.
        inspect: callable ``(engine, session, packet)`` feeding one
            packet to the engine; defaults to SignatureEngine-style
            ``engine.inspect(session.five_tuple, packet.payload)``.
    """
    if inspect is None:
        def inspect(engine: object, session: Session,
                    packet: object) -> None:
            engine.inspect(session.five_tuple, packet.payload)

    observations: List[Observation] = []
    for batch in batches:
        engine = engine_factory()
        total_bytes = 0.0
        for session in batch:
            for packet in session.packets:
                inspect(engine, session, packet)
                total_bytes += len(packet.payload)
        observations.append((float(len(batch)), total_bytes,
                             engine.stats.work_units))
    return fit_cost_model(observations)


def apply_cost_model(classes: Sequence[TrafficClass], model: CostModel,
                     resource: str = "cpu",
                     payload_fraction: float = 1.0
                     ) -> List[TrafficClass]:
    """Derive per-class footprints from a fitted cost model.

    Args:
        classes: classes whose ``F_c^{resource}`` should be replaced.
        model: the profiled cost model.
        payload_fraction: fraction of ``session_bytes`` that is
            payload the engine actually inspects (headers excluded).
    """
    if not 0.0 <= payload_fraction <= 1.0:
        raise ValueError("payload_fraction must be in [0, 1]")
    updated = []
    for cls in classes:
        footprints = dict(cls.footprints)
        footprints[resource] = model.footprint(
            cls.session_bytes * payload_fraction)
        updated.append(replace(cls, footprints=footprints))
    return updated
