"""Scan detection: per-source distinct-destination counting.

The paper's ``Scan`` module "counts the number of distinct destination
IP addresses to which a given source has initiated a connection in the
previous measurement epoch" (Section 6). Centralized, it must run where
*all* of a host's traffic is visible (the ingress gateway); aggregated,
each node counts its assigned share of sources and reports
intermediate results.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.nids.engine import NIDSEngine
from repro.nids.reports import (
    DestinationSetReport,
    FlowTupleReport,
    SourceCountReport,
)


class ScanDetector(NIDSEngine):
    """Distinct-destination counter with a configurable local threshold.

    Args:
        threshold: sources contacting more than this many distinct
            destinations are flagged *locally*. Under aggregation the
            paper configures each individual NIDS with threshold 0 and
            applies the real threshold ``k`` only at the aggregator
            (Section 7.3), because a per-node count may be under ``k``
            while the aggregate exceeds it.
        per_session_cost / per_byte_cost: work-unit cost model; scan
            detection is flow-level, so the per-byte cost defaults to 0.
    """

    def __init__(self, threshold: int = 0,
                 per_session_cost: float = 10.0,
                 per_byte_cost: float = 0.0) -> None:
        super().__init__(per_session_cost, per_byte_cost)
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold = threshold
        self._destinations: Dict[int, Set[int]] = {}
        self._flows: Set[tuple] = set()

    def observe_flow(self, src_ip: int, dst_ip: int,
                     flow_key=None) -> None:
        """Record one observed flow (or connection attempt).

        Args:
            src_ip: source address (the scanned-for entity).
            dst_ip: destination address.
            flow_key: optional distinct-flow identifier; repeated calls
                with the same key charge no extra session cost.
        """
        key = flow_key if flow_key is not None else (src_ip, dst_ip)
        self._charge(key, 0.0)
        self._destinations.setdefault(src_ip, set()).add(dst_ip)
        self._flows.add((src_ip, dst_ip))

    def destination_count(self, src_ip: int) -> int:
        """Distinct destinations contacted by a source so far."""
        return len(self._destinations.get(src_ip, ()))

    def flagged_sources(self) -> List[int]:
        """Sources whose local count exceeds the local threshold."""
        return sorted(src for src, dsts in self._destinations.items()
                      if len(dsts) > self.threshold)

    # -- intermediate reports (the three Figure 8 granularities) --------

    def source_count_report(self, node: str) -> SourceCountReport:
        """Per-source distinct-destination counts (source-level split).

        Correct to add across nodes only when sources were partitioned
        across nodes — the source-level split guarantees that.
        """
        return SourceCountReport(
            node=node,
            counts={src: len(dsts)
                    for src, dsts in self._destinations.items()})

    def destination_set_report(self, node: str) -> DestinationSetReport:
        """Full per-source destination sets (needed by a flow-level
        split to avoid double counting; larger records)."""
        return DestinationSetReport(
            node=node,
            destinations={src: frozenset(dsts)
                          for src, dsts in self._destinations.items()})

    def flow_tuple_report(self, node: str) -> FlowTupleReport:
        """Raw (src, dst) tuples (flow-level split's safe report)."""
        return FlowTupleReport(node=node, tuples=frozenset(self._flows))

    def reset(self) -> None:
        super().reset()
        self._destinations = {}
        self._flows = set()
