"""Wire encoding for intermediate reports (Section 6, footnote 6).

The communication cost depends on "how these reports are encoded,
e.g., key-value pairs for a source-split". This module provides the
concrete binary encodings behind the nominal record sizes in
:mod:`repro.nids.reports`: fixed-width big-endian records with a small
header, so reports can actually be shipped between shim and aggregator
and the byte-hop accounting can be checked against real encoded sizes.

Layout (all integers big-endian):

    header:  magic ``b"NR"`` | type (1 byte) | node-name length (2) |
             record count (4) | node name (utf-8)
    source-count record:      src (8) | count (8)          -> 16 B
    flow-tuple record:        src (8) | dst (8)            -> 16 B
    destination-set record:   src (8) | set size (4) | dsts (8 each)
"""

from __future__ import annotations

import struct
from typing import Union

from repro.nids.reports import (
    DestinationSetReport,
    FlowTupleReport,
    SourceCountReport,
)

_MAGIC = b"NR"
_HEADER = struct.Struct(">2sBHI")
_PAIR = struct.Struct(">QQ")
_SET_HEAD = struct.Struct(">QI")
_ADDR = struct.Struct(">Q")

_TYPE_SOURCE_COUNT = 1
_TYPE_FLOW_TUPLE = 2
_TYPE_DESTINATION_SET = 3

Report = Union[SourceCountReport, FlowTupleReport, DestinationSetReport]


class ReportDecodeError(ValueError):
    """The byte string is not a valid encoded report."""


def encode_report(report: Report) -> bytes:
    """Serialize a report to its wire format."""
    name = report.node.encode("utf-8")
    if isinstance(report, SourceCountReport):
        body = b"".join(_PAIR.pack(src, count)
                        for src, count in sorted(report.counts.items()))
        header = _HEADER.pack(_MAGIC, _TYPE_SOURCE_COUNT, len(name),
                              len(report.counts))
    elif isinstance(report, FlowTupleReport):
        body = b"".join(_PAIR.pack(src, dst)
                        for src, dst in sorted(report.tuples))
        header = _HEADER.pack(_MAGIC, _TYPE_FLOW_TUPLE, len(name),
                              len(report.tuples))
    elif isinstance(report, DestinationSetReport):
        chunks = []
        for src, dsts in sorted(report.destinations.items()):
            chunks.append(_SET_HEAD.pack(src, len(dsts)))
            chunks.extend(_ADDR.pack(dst) for dst in sorted(dsts))
        body = b"".join(chunks)
        header = _HEADER.pack(_MAGIC, _TYPE_DESTINATION_SET, len(name),
                              len(report.destinations))
    else:
        raise TypeError(f"cannot encode {type(report).__name__}")
    return header + name + body


def decode_report(data: bytes) -> Report:
    """Parse a wire-format report back into its record object."""
    if len(data) < _HEADER.size:
        raise ReportDecodeError("truncated header")
    magic, rtype, name_len, count = _HEADER.unpack_from(data, 0)
    if magic != _MAGIC:
        raise ReportDecodeError(f"bad magic {magic!r}")
    offset = _HEADER.size
    if len(data) < offset + name_len:
        raise ReportDecodeError("truncated node name")
    node = data[offset:offset + name_len].decode("utf-8")
    offset += name_len

    if rtype == _TYPE_SOURCE_COUNT:
        counts = {}
        for _ in range(count):
            if len(data) < offset + _PAIR.size:
                raise ReportDecodeError("truncated source-count record")
            src, value = _PAIR.unpack_from(data, offset)
            offset += _PAIR.size
            counts[src] = value
        return SourceCountReport(node=node, counts=counts)

    if rtype == _TYPE_FLOW_TUPLE:
        tuples = set()
        for _ in range(count):
            if len(data) < offset + _PAIR.size:
                raise ReportDecodeError("truncated flow-tuple record")
            src, dst = _PAIR.unpack_from(data, offset)
            offset += _PAIR.size
            tuples.add((src, dst))
        return FlowTupleReport(node=node, tuples=frozenset(tuples))

    if rtype == _TYPE_DESTINATION_SET:
        destinations = {}
        for _ in range(count):
            if len(data) < offset + _SET_HEAD.size:
                raise ReportDecodeError("truncated set header")
            src, size = _SET_HEAD.unpack_from(data, offset)
            offset += _SET_HEAD.size
            dsts = set()
            for _ in range(size):
                if len(data) < offset + _ADDR.size:
                    raise ReportDecodeError("truncated destination")
                (dst,) = _ADDR.unpack_from(data, offset)
                offset += _ADDR.size
                dsts.add(dst)
            destinations[src] = frozenset(dsts)
        return DestinationSetReport(node=node, destinations=destinations)

    raise ReportDecodeError(f"unknown report type {rtype}")


def encoded_size(report: Report) -> int:
    """Exact wire size in bytes (header + name + records)."""
    return len(encode_report(report))
