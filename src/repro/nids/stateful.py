"""Stateful session analysis needing both traffic directions.

Section 5's motivating analysis: e.g., matching a request with its
response, or stepping-stone correlation. The analysis is only
*effective* for a session when the analyzing location observes both the
forward and the reverse flow; a session where only one side was seen is
a detection miss (the quantity Figure 16 plots).
"""

from __future__ import annotations

from typing import Dict, Set

from repro.nids.engine import NIDSEngine


class StatefulSessionAnalyzer(NIDSEngine):
    """Tracks which directions of each session this location has seen.

    Feed it every packet delivered to the local NIDS process (including
    replicated-in packets); afterwards query coverage.
    """

    def __init__(self, per_session_cost: float = 50.0,
                 per_byte_cost: float = 0.5) -> None:
        super().__init__(per_session_cost, per_byte_cost)
        self._directions: Dict[object, Set[str]] = {}

    def observe(self, session_key, direction: str,
                payload_bytes: float = 0.0) -> None:
        """Record one packet of ``session_key`` in ``direction``.

        Args:
            session_key: any hashable session identifier; both
                directions must present the same key (use the canonical
                5-tuple).
            direction: ``"fwd"`` or ``"rev"``.
        """
        if direction not in ("fwd", "rev"):
            raise ValueError(f"bad direction {direction!r}")
        self._charge(session_key, payload_bytes)
        self._directions.setdefault(session_key, set()).add(direction)

    def is_covered(self, session_key) -> bool:
        """True when both directions of the session were observed."""
        return self._directions.get(session_key) == {"fwd", "rev"}

    @property
    def sessions_covered(self) -> int:
        """Sessions with both directions observed here."""
        return sum(1 for dirs in self._directions.values()
                   if dirs == {"fwd", "rev"})

    @property
    def sessions_partial(self) -> int:
        """Sessions where only one direction was observed."""
        return sum(1 for dirs in self._directions.values()
                   if len(dirs) == 1)

    def covered_sessions(self) -> Set[object]:
        """The set of fully covered session keys."""
        return {key for key, dirs in self._directions.items()
                if dirs == {"fwd", "rev"}}

    def reset(self) -> None:
        super().reset()
        self._directions = {}
