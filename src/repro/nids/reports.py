"""Intermediate report records exchanged between NIDS and aggregators.

Three record shapes correspond to the three split granularities of
Figure 8. Their ``record_count``/``record_bytes`` drive the
communication-cost accounting (byte-hops, Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple

# Nominal encoded sizes (bytes) per record row.
SOURCE_COUNT_RECORD_BYTES = 16.0      # (src, count) key-value pair
FLOW_TUPLE_RECORD_BYTES = 16.0        # (src, dst) pair
DESTINATION_SET_ENTRY_BYTES = 8.0     # one destination in a set
DESTINATION_SET_KEY_BYTES = 8.0       # the per-source key


@dataclass(frozen=True)
class SourceCountReport:
    """Source-level split: one (src, #distinct destinations) row per
    source. Safe to sum across nodes when sources are partitioned."""

    node: str
    counts: Dict[int, int]

    @property
    def record_count(self) -> int:
        return len(self.counts)

    @property
    def record_bytes(self) -> float:
        return self.record_count * SOURCE_COUNT_RECORD_BYTES


@dataclass(frozen=True)
class FlowTupleReport:
    """Flow-level split: the full set of (src, dst) tuples, so the
    aggregator can union away duplicate pairs across nodes."""

    node: str
    tuples: FrozenSet[Tuple[int, int]]

    @property
    def record_count(self) -> int:
        return len(self.tuples)

    @property
    def record_bytes(self) -> float:
        return self.record_count * FLOW_TUPLE_RECORD_BYTES


@dataclass(frozen=True)
class DestinationSetReport:
    """Destination-level split: per-source destination sets (each node
    owns a destination partition, so sets are disjoint across nodes and
    counts may be summed)."""

    node: str
    destinations: Dict[int, FrozenSet[int]]

    @property
    def record_count(self) -> int:
        return sum(len(dsts) for dsts in self.destinations.values())

    @property
    def record_bytes(self) -> float:
        return (len(self.destinations) * DESTINATION_SET_KEY_BYTES +
                self.record_count * DESTINATION_SET_ENTRY_BYTES)
