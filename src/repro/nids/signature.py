"""Payload signature matching: an Aho-Corasick engine.

``Signature`` detection in the paper is the canonical per-session,
self-contained analysis (Figure 2) — any node observing a session can
run it. Real NIDS use multi-pattern string/regex matching; we implement
the classic Aho-Corasick automaton, which scans each payload byte once
regardless of pattern-set size.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class SignatureMatch:
    """One pattern hit inside a payload."""

    pattern: bytes
    end_offset: int  # index one past the last matched byte


class AhoCorasick:
    """A byte-level Aho-Corasick multi-pattern matcher.

    Build once from a pattern set, then :meth:`search` any number of
    payloads. Matching is O(len(payload) + matches).
    """

    def __init__(self, patterns: Iterable[bytes]) -> None:
        patterns = [bytes(p) for p in patterns]
        if any(len(p) == 0 for p in patterns):
            raise ValueError("empty patterns are not allowed")
        self.patterns = patterns
        # State 0 is the root. goto maps (state, byte) -> state.
        self._goto: List[Dict[int, int]] = [{}]
        self._fail: List[int] = [0]
        self._output: List[List[bytes]] = [[]]
        for pattern in patterns:
            self._insert(pattern)
        self._build_failure_links()

    def _insert(self, pattern: bytes) -> None:
        state = 0
        for byte in pattern:
            nxt = self._goto[state].get(byte)
            if nxt is None:
                nxt = len(self._goto)
                self._goto.append({})
                self._fail.append(0)
                self._output.append([])
                self._goto[state][byte] = nxt
            state = nxt
        self._output[state].append(pattern)

    def _build_failure_links(self) -> None:
        queue = deque()
        for byte, state in self._goto[0].items():
            self._fail[state] = 0
            queue.append(state)
        while queue:
            current = queue.popleft()
            for byte, nxt in self._goto[current].items():
                queue.append(nxt)
                fallback = self._fail[current]
                while fallback and byte not in self._goto[fallback]:
                    fallback = self._fail[fallback]
                self._fail[nxt] = self._goto[fallback].get(byte, 0)
                if self._fail[nxt] == nxt:
                    self._fail[nxt] = 0
                self._output[nxt] = (self._output[nxt] +
                                     self._output[self._fail[nxt]])

    @property
    def num_states(self) -> int:
        return len(self._goto)

    def search(self, payload: bytes) -> List[SignatureMatch]:
        """All pattern occurrences in ``payload``."""
        matches: List[SignatureMatch] = []
        state = 0
        for offset, byte in enumerate(payload):
            while state and byte not in self._goto[state]:
                state = self._fail[state]
            state = self._goto[state].get(byte, 0)
            for pattern in self._output[state]:
                matches.append(SignatureMatch(pattern, offset + 1))
        return matches


# A small default rule set standing in for Snort's default signatures.
DEFAULT_SIGNATURES: Tuple[bytes, ...] = (
    b"/etc/passwd",
    b"cmd.exe",
    b"<script>alert",
    b"\x90\x90\x90\x90\x90\x90\x90\x90",  # NOP sled
    b"SELECT * FROM",
    b"../../../../",
    b"USER anonymous",
    b"\xde\xad\xbe\xef",
)


from repro.nids.engine import NIDSEngine  # noqa: E402  (after helpers)


class SignatureEngine(NIDSEngine):
    """Per-session payload signature detection.

    Args:
        patterns: signature byte strings; defaults to a small built-in
            rule set standing in for Snort's defaults.
        per_session_cost / per_byte_cost: work-unit cost model.
    """

    def __init__(self, patterns: Optional[Sequence[bytes]] = None,
                 per_session_cost: float = 100.0,
                 per_byte_cost: float = 1.0) -> None:
        super().__init__(per_session_cost, per_byte_cost)
        self.automaton = AhoCorasick(patterns if patterns is not None
                                     else DEFAULT_SIGNATURES)
        self.matches: List[Tuple[object, SignatureMatch]] = []

    def inspect(self, session_key, payload: bytes) -> List[SignatureMatch]:
        """Scan one packet payload in the context of a session.

        Returns the pattern matches found (also recorded, and counted
        into :attr:`stats`).
        """
        self._charge(session_key, len(payload))
        found = self.automaton.search(payload)
        for match in found:
            self.matches.append((session_key, match))
        self.stats.alerts += len(found)
        return found

    def reset(self) -> None:
        super().reset()
        self.matches = []
