"""Base NIDS engine with work-unit accounting.

The paper measures NIDS cost in CPU instructions (PAPI, Figure 10) and
models per-class expected per-session resource footprints ``F_c^r``
obtained from offline benchmarks [8]. The reproduction's engines
account *work units*: a fixed per-session cost plus a per-byte
inspection cost. This is a monotone proxy for instruction counts and
produces the same per-node load comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class EngineStats:
    """Work accounting common to all engines."""

    sessions_seen: int = 0
    packets_seen: int = 0
    bytes_seen: float = 0.0
    work_units: float = 0.0
    alerts: int = 0


class NIDSEngine:
    """Base class: cost model plus counters.

    Args:
        per_session_cost: work units charged once per distinct session.
        per_byte_cost: work units per payload byte inspected.
    """

    def __init__(self, per_session_cost: float = 100.0,
                 per_byte_cost: float = 1.0) -> None:
        if per_session_cost < 0 or per_byte_cost < 0:
            raise ValueError("costs must be non-negative")
        self.per_session_cost = per_session_cost
        self.per_byte_cost = per_byte_cost
        self.stats = EngineStats()
        self._known_sessions = set()

    def _charge(self, session_key, payload_bytes: float) -> None:
        """Record the cost of inspecting ``payload_bytes`` of a packet
        belonging to session ``session_key``."""
        self.stats.packets_seen += 1
        self.stats.bytes_seen += payload_bytes
        self.stats.work_units += self.per_byte_cost * payload_bytes
        if session_key not in self._known_sessions:
            self._known_sessions.add(session_key)
            self.stats.sessions_seen += 1
            self.stats.work_units += self.per_session_cost

    def reset(self) -> None:
        """Clear all counters and session state."""
        self.stats = EngineStats()
        self._known_sessions = set()
