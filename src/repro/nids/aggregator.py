"""Report aggregation for distributed Scan detection (Sections 6, 7.3).

Each on-path node runs a :class:`~repro.nids.scan.ScanDetector` on its
assigned share of the traffic and ships an intermediate report to the
aggregation point. The aggregator combines the reports per the chosen
split strategy and applies the alert threshold ``k`` *only here* —
individual NIDS report everything (local threshold 0), because a
per-node count below ``k`` may still aggregate above it (Section 7.3).

The three strategies of Figure 8 differ in correctness and cost:

- ``FLOW_LEVEL`` — sessions split arbitrarily; adding per-source
  counters would over-count a destination reached via flows at
  different nodes, so nodes must report full (src, dst) tuples and the
  aggregator unions them. Correct, but the largest reports.
- ``DESTINATION_LEVEL`` — each node owns a destination partition; sets
  are disjoint so counts add. Correct; report rows ~ #sources per node.
- ``SOURCE_LEVEL`` — each node owns a source partition; each source's
  destinations are counted entirely at one node per path, so per-source
  counts add across *paths*. Correct and the cheapest — the paper's
  choice.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.nids.reports import (
    DestinationSetReport,
    FlowTupleReport,
    SourceCountReport,
)


class SplitStrategy(enum.Enum):
    """Figure 8's three ways of splitting Scan detection."""

    FLOW_LEVEL = "flow"
    DESTINATION_LEVEL = "destination"
    SOURCE_LEVEL = "source"


def aggregate_reports(strategy: SplitStrategy,
                      reports: Sequence) -> Dict[int, int]:
    """Combine intermediate reports into per-source distinct-destination
    counts, per the strategy's semantics.

    Args:
        strategy: which split produced the reports.
        reports: report records matching the strategy
            (:class:`FlowTupleReport`, :class:`DestinationSetReport`,
            or :class:`SourceCountReport`).

    Returns:
        Mapping source -> distinct destination count.
    """
    if strategy is SplitStrategy.FLOW_LEVEL:
        union: Set[Tuple[int, int]] = set()
        for report in reports:
            if not isinstance(report, FlowTupleReport):
                raise TypeError("flow-level aggregation needs "
                                "FlowTupleReport records")
            union |= report.tuples
        counts: Dict[int, Set[int]] = {}
        for src, dst in union:
            counts.setdefault(src, set()).add(dst)
        return {src: len(dsts) for src, dsts in counts.items()}

    if strategy is SplitStrategy.DESTINATION_LEVEL:
        totals: Dict[int, int] = {}
        for report in reports:
            if not isinstance(report, DestinationSetReport):
                raise TypeError("destination-level aggregation needs "
                                "DestinationSetReport records")
            for src, dsts in report.destinations.items():
                totals[src] = totals.get(src, 0) + len(dsts)
        return totals

    if strategy is SplitStrategy.SOURCE_LEVEL:
        totals = {}
        for report in reports:
            if not isinstance(report, SourceCountReport):
                raise TypeError("source-level aggregation needs "
                                "SourceCountReport records")
            for src, count in report.counts.items():
                totals[src] = totals.get(src, 0) + count
        return totals

    raise ValueError(f"unknown strategy {strategy!r}")


def report_cost_record_hops(reports: Sequence,
                            hop_distance: Dict[str, int]
                            ) -> Tuple[float, float]:
    """Communication cost of shipping reports to the aggregator.

    Args:
        reports: the intermediate reports.
        hop_distance: hops from each reporting node to the aggregation
            point.

    Returns:
        ``(record_hops, byte_hops)`` — the paper's Figure 8 example
        counts record-hops ("12 units" / "6 units"); Section 3 defines
        the general byte-hop footprint.
    """
    record_hops = 0.0
    byte_hops = 0.0
    for report in reports:
        hops = hop_distance[report.node]
        record_hops += report.record_count * hops
        byte_hops += report.record_bytes * hops
    return record_hops, byte_hops


class ScanAggregator:
    """The aggregation point for one gateway's Scan detection.

    Args:
        threshold: the real alert threshold ``k`` — sources contacting
            more than ``k`` distinct destinations are flagged.
        strategy: split strategy the reporting nodes use.
    """

    def __init__(self, threshold: int,
                 strategy: SplitStrategy = SplitStrategy.SOURCE_LEVEL) -> None:
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold = threshold
        self.strategy = strategy
        self._reports: List = []

    def submit(self, report) -> None:
        """Receive one node's intermediate report."""
        self._reports.append(report)

    def submit_all(self, reports: Iterable) -> None:
        for report in reports:
            self.submit(report)

    @property
    def num_reports(self) -> int:
        return len(self._reports)

    def combined_counts(self) -> Dict[int, int]:
        """Aggregate per-source distinct-destination counts."""
        return aggregate_reports(self.strategy, self._reports)

    def alerts(self) -> List[int]:
        """Sources exceeding the threshold (the final analysis result,
        semantically equivalent to a centralized scan detector)."""
        return sorted(src for src, count in self.combined_counts().items()
                      if count > self.threshold)

    def reset(self) -> None:
        self._reports = []
