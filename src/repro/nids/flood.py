"""Flood/DoS detection via per-destination aggregation.

Section 6: "The high-level approach described here can also be
extended to other types of analysis amenable to such aggregation
(e.g., DoS or flood detection)." Flood detection is the mirror image
of Scan detection — count the distinct *sources* contacting each
*destination* — so the natural work split is per-destination
(the shim's ``HashMode.DESTINATION``), and intermediate per-destination
counts add across nodes exactly like per-source scan counts do.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.nids.engine import NIDSEngine
from repro.nids.reports import SourceCountReport


class FloodDetector(NIDSEngine):
    """Distinct-source counter per destination (DDoS flagging).

    Args:
        threshold: destinations contacted by more than this many
            distinct sources are flagged locally; as with Scan
            detection, distributed deployments set this to 0 and apply
            the real threshold at the aggregator (Section 7.3).
    """

    def __init__(self, threshold: int = 0,
                 per_session_cost: float = 10.0,
                 per_byte_cost: float = 0.0) -> None:
        super().__init__(per_session_cost, per_byte_cost)
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold = threshold
        self._sources: Dict[int, Set[int]] = {}

    def observe_flow(self, src_ip: int, dst_ip: int,
                     flow_key=None) -> None:
        """Record one flow toward ``dst_ip``."""
        key = flow_key if flow_key is not None else (src_ip, dst_ip)
        self._charge(key, 0.0)
        self._sources.setdefault(dst_ip, set()).add(src_ip)

    def source_count(self, dst_ip: int) -> int:
        """Distinct sources seen contacting a destination."""
        return len(self._sources.get(dst_ip, ()))

    def flagged_destinations(self) -> List[int]:
        """Destinations whose local count exceeds the threshold."""
        return sorted(dst for dst, sources in self._sources.items()
                      if len(sources) > self.threshold)

    def destination_count_report(self, node: str) -> SourceCountReport:
        """Per-destination distinct-source counts.

        Correct to sum across nodes only under a per-destination split
        (each destination owned by one node per path) — the exact dual
        of the scan detector's source-level report. Reuses the
        key-value record shape (and hence record-size accounting).
        """
        return SourceCountReport(
            node=node,
            counts={dst: len(sources)
                    for dst, sources in self._sources.items()})

    def reset(self) -> None:
        super().reset()
        self._sources = {}
