"""repro — reproduction of "New Opportunities for Load Balancing in
Network-Wide Intrusion Detection Systems" (CoNEXT 2012).

The package is organized as:

- :mod:`repro.lpsolve` — LP modeling/solving substrate (CPLEX stand-in).
- :mod:`repro.topology` — PoP-level topologies, routing, asymmetry.
- :mod:`repro.traffic` — gravity-model traffic matrices and variability.
- :mod:`repro.core` — the paper's three LP formulations and architecture
  presets (the primary contribution).
- :mod:`repro.shim` — hash-range shim layer (Section 7).
- :mod:`repro.nids` — simulated NIDS engines and the report aggregator.
- :mod:`repro.simulation` — trace generation and trace-driven emulation.
- :mod:`repro.experiments` — one runner per paper table/figure.

Quickstart::

    from repro import (
        builtin_topology, gravity_traffic, NetworkState,
        ReplicationProblem, MirrorPolicy,
    )

    topo = builtin_topology("internet2")
    classes = gravity_traffic(topo, total_sessions=8_000_000)
    state = NetworkState.calibrated(topo, classes, dc_capacity_factor=10.0)
    problem = ReplicationProblem(
        state, mirror_policy=MirrorPolicy.datacenter(),
        max_link_load=0.4)
    result = problem.solve()
    print(result.load_cost)
"""

from repro.topology import (
    Topology,
    builtin_topology,
    builtin_topology_names,
    synthetic_isp_topology,
)
from repro.traffic import (
    TrafficClass,
    TrafficMatrix,
    gravity_traffic,
    gravity_traffic_matrix,
    TrafficVariabilityModel,
)
from repro.core import (
    AggregationProblem,
    ArchitectureKind,
    MirrorPolicy,
    NetworkState,
    ReplicationProblem,
    SplitTrafficProblem,
    evaluate_architecture,
    place_datacenter,
)
from repro.shim import Shim, ShimConfig, compile_hash_ranges, session_hash
from repro.nids import (
    ScanDetector,
    SignatureEngine,
    StatefulSessionAnalyzer,
    ScanAggregator,
)
from repro.simulation import (
    Emulation,
    Session,
    TraceGenerator,
)

__version__ = "1.0.0"

__all__ = [
    "AggregationProblem",
    "ArchitectureKind",
    "Emulation",
    "MirrorPolicy",
    "NetworkState",
    "ReplicationProblem",
    "ScanAggregator",
    "ScanDetector",
    "Session",
    "Shim",
    "ShimConfig",
    "SignatureEngine",
    "SplitTrafficProblem",
    "StatefulSessionAnalyzer",
    "Topology",
    "TraceGenerator",
    "TrafficClass",
    "TrafficMatrix",
    "TrafficVariabilityModel",
    "builtin_topology",
    "builtin_topology_names",
    "compile_hash_ranges",
    "evaluate_architecture",
    "gravity_traffic",
    "gravity_traffic_matrix",
    "place_datacenter",
    "session_hash",
    "synthetic_isp_topology",
    "__version__",
]
