"""Unit tests for shim configs and the runtime shim."""

import pytest

from repro.core import (
    AggregationProblem,
    MirrorPolicy,
    ReplicationProblem,
)
from repro.shim import (
    FiveTuple,
    Shim,
    ShimAction,
    ShimConfig,
    ShimRule,
    build_aggregation_configs,
    build_replication_configs,
)
from repro.shim.config import HashMode
from repro.shim.ranges import HashRange


def make_tuple(i: int) -> FiveTuple:
    return FiveTuple(6, 1000 + i, 10_000 + i, 2000 + i, 80)


@pytest.fixture
def replication_setup(line_state_dc):
    result = ReplicationProblem(
        line_state_dc, mirror_policy=MirrorPolicy.datacenter(),
        max_link_load=0.4).solve()
    configs = build_replication_configs(line_state_dc, result)
    return line_state_dc, result, configs


class TestReplicationConfigs:
    def test_every_session_owned_by_one_path_node(self,
                                                  replication_setup):
        """The union of a class's rules covers [0,1) exactly once
        across the path nodes (disjoint hash ranges)."""
        state, _, configs = replication_setup
        for cls in state.classes:
            for i in range(200):
                value = i / 200.0
                actors = []
                for node in cls.path:
                    for rule in configs[node].rules_for(cls.name):
                        if rule.hash_range.contains(value):
                            actors.append((node, rule.action))
                assert len(actors) == 1, (cls.name, value, actors)

    def test_mirror_gets_process_rules_for_offloaded_ranges(
            self, replication_setup):
        state, result, configs = replication_setup
        dc_rules = configs["DC"].rules
        offloaded_classes = {name for name, o in
                             result.offload_fractions.items()
                             if sum(o.values()) > 1e-6}
        assert offloaded_classes
        for name in offloaded_classes:
            assert any(r.action is ShimAction.PROCESS
                       for r in dc_rules.get(name, []))

    def test_realized_fractions_match_lp(self, replication_setup):
        """Hashing many sessions realizes the LP's fractions."""
        state, result, configs = replication_setup
        cls = state.classes[0]  # A->D
        shims = {node: Shim(configs[node], lambda t: cls.name)
                 for node in cls.path}
        counts = {node: 0 for node in cls.path}
        replicated = 0
        total = 3000
        for i in range(total):
            tup = make_tuple(i)
            for node in cls.path:
                decision = shims[node].handle(tup)
                if decision.is_process:
                    counts[node] += 1
                elif decision.is_replicate:
                    replicated += 1
        fractions = result.process_fractions[cls.name]
        for node in cls.path:
            assert counts[node] / total == pytest.approx(
                fractions[node], abs=0.05)
        assert replicated / total == pytest.approx(
            result.replicated_fraction(cls.name), abs=0.05)


class TestShimRuntime:
    def test_unclassified_packet_ignored(self):
        config = ShimConfig(node="A", rules={})
        shim = Shim(config, classifier=lambda t: None)
        decision = shim.handle(make_tuple(1))
        assert decision.is_ignore
        assert shim.counters.packets_ignored == 1

    def test_both_directions_agree(self, replication_setup):
        """A session and its reverse get the same process/offload
        decision (bidirectional hashing)."""
        state, _, configs = replication_setup
        cls = state.classes[0]
        node = cls.path[0]
        shim = Shim(configs[node], lambda t: cls.name)
        for i in range(100):
            tup = make_tuple(i)
            fwd = shim.handle(tup, "fwd")
            rev = shim.handle(tup.reversed(), "rev")
            assert fwd.action == rev.action
            assert fwd.target == rev.target

    def test_counters_accumulate(self):
        rule = ShimRule("c", HashRange("k", 0.0, 1.0),
                        ShimAction.REPLICATE, target="DC")
        config = ShimConfig(node="A", rules={"c": [rule]})
        shim = Shim(config, classifier=lambda t: "c")
        shim.handle(make_tuple(1), size_bytes=100.0)
        shim.handle(make_tuple(2), size_bytes=50.0)
        assert shim.counters.packets_replicated == 2
        assert shim.counters.bytes_replicated == 150.0

    def test_directional_rule_matching(self):
        rule = ShimRule("c", HashRange("k", 0.0, 1.0),
                        ShimAction.PROCESS, direction="fwd")
        config = ShimConfig(node="A", rules={"c": [rule]})
        shim = Shim(config, classifier=lambda t: "c")
        assert shim.handle(make_tuple(1), "fwd").is_process
        assert shim.handle(make_tuple(1), "rev").is_ignore


class TestAggregationConfigs:
    def test_source_ranges_partition_sources(self, line_state):
        result = AggregationProblem(line_state, beta=0.0).solve()
        configs = build_aggregation_configs(line_state, result)
        cls = line_state.classes[0]
        shims = {node: Shim(configs[node], lambda t: cls.name)
                 for node in cls.path}
        for i in range(300):
            tup = make_tuple(i)
            actors = [node for node in cls.path
                      if shims[node].handle(tup).is_process]
            assert len(actors) == 1

    def test_same_source_always_same_node(self, line_state):
        """All flows of one source go to one counting node — the
        property that makes the source-level split correct."""
        result = AggregationProblem(line_state, beta=0.0).solve()
        configs = build_aggregation_configs(line_state, result)
        cls = line_state.classes[0]
        shims = {node: Shim(configs[node], lambda t: cls.name)
                 for node in cls.path}
        src = 12345
        owners = set()
        for dst in range(50):
            tup = FiveTuple(6, src, 1000, 5000 + dst, 80)
            for node in cls.path:
                if shims[node].handle(tup).is_process:
                    owners.add(node)
        assert len(owners) == 1

    def test_rules_use_source_hash_mode(self, line_state):
        result = AggregationProblem(line_state, beta=0.0).solve()
        configs = build_aggregation_configs(line_state, result)
        for config in configs.values():
            for rules in config.rules.values():
                for rule in rules:
                    assert rule.hash_mode is HashMode.SOURCE
