"""Unit tests for LP expressions and constraints."""

import pytest

from repro.lpsolve import (
    Constraint,
    ConstraintSense,
    Model,
    lin_sum,
)


@pytest.fixture
def model():
    return Model("t")


@pytest.fixture
def xy(model):
    return model.add_variable("x"), model.add_variable("y")


class TestArithmetic:
    def test_variable_plus_variable(self, xy):
        x, y = xy
        expr = x + y
        assert expr.coefficient(x) == 1.0
        assert expr.coefficient(y) == 1.0
        assert expr.constant == 0.0

    def test_variable_plus_constant(self, xy):
        x, _ = xy
        expr = x + 5
        assert expr.constant == 5.0

    def test_radd_constant(self, xy):
        x, _ = xy
        expr = 5 + x
        assert expr.constant == 5.0
        assert expr.coefficient(x) == 1.0

    def test_subtraction(self, xy):
        x, y = xy
        expr = x - y - 2
        assert expr.coefficient(x) == 1.0
        assert expr.coefficient(y) == -1.0
        assert expr.constant == -2.0

    def test_rsub(self, xy):
        x, _ = xy
        expr = 3 - x
        assert expr.coefficient(x) == -1.0
        assert expr.constant == 3.0

    def test_scalar_multiplication(self, xy):
        x, y = xy
        expr = 2 * x + y * 3
        assert expr.coefficient(x) == 2.0
        assert expr.coefficient(y) == 3.0

    def test_expression_scaling(self, xy):
        x, y = xy
        expr = (x + 2 * y + 1) * 4
        assert expr.coefficient(x) == 4.0
        assert expr.coefficient(y) == 8.0
        assert expr.constant == 4.0

    def test_division(self, xy):
        x, _ = xy
        expr = (4 * x) / 2
        assert expr.coefficient(x) == 2.0

    def test_division_by_zero_raises(self, xy):
        x, _ = xy
        with pytest.raises(ZeroDivisionError):
            (x + 1) / 0

    def test_negation(self, xy):
        x, _ = xy
        expr = -(x + 3)
        assert expr.coefficient(x) == -1.0
        assert expr.constant == -3.0

    def test_multiplying_two_expressions_raises(self, xy):
        x, y = xy
        with pytest.raises(TypeError):
            (x + 1) * (y + 1)

    def test_adding_garbage_raises(self, xy):
        x, _ = xy
        with pytest.raises(TypeError):
            x + "nope"

    def test_coefficients_accumulate(self, xy):
        x, _ = xy
        expr = x + x + x
        assert expr.coefficient(x) == 3.0

    def test_cancellation(self, xy):
        x, _ = xy
        expr = x - x
        assert expr.is_constant()


class TestLinSum:
    def test_mixed_operands(self, xy):
        x, y = xy
        expr = lin_sum([x, 2 * y, 3, x])
        assert expr.coefficient(x) == 2.0
        assert expr.coefficient(y) == 2.0
        assert expr.constant == 3.0

    def test_empty(self):
        expr = lin_sum([])
        assert expr.is_constant()
        assert expr.constant == 0.0

    def test_matches_repeated_addition(self, xy):
        x, y = xy
        via_sum = lin_sum([x, y, 1.5])
        via_add = x + y + 1.5
        assert via_sum.coeffs == via_add.coeffs
        assert via_sum.constant == via_add.constant

    def test_rejects_strings(self):
        with pytest.raises(TypeError):
            lin_sum(["x"])


class TestConstraints:
    def test_le_builds_constraint(self, xy):
        x, y = xy
        con = x + y <= 3
        assert isinstance(con, Constraint)
        assert con.sense is ConstraintSense.LE
        assert con.rhs == 3.0

    def test_ge_builds_constraint(self, xy):
        x, _ = xy
        con = x >= 1
        assert con.sense is ConstraintSense.GE
        assert con.rhs == 1.0

    def test_eq_builds_constraint(self, xy):
        x, y = xy
        con = x + y == 2
        assert con.sense is ConstraintSense.EQ
        assert con.rhs == 2.0

    def test_violation_satisfied(self, xy):
        x, y = xy
        con = x + y <= 3
        assert con.violation({x: 1.0, y: 1.0}) == 0.0

    def test_violation_amount(self, xy):
        x, y = xy
        con = x + y <= 3
        assert con.violation({x: 3.0, y: 2.0}) == pytest.approx(2.0)

    def test_violation_eq(self, xy):
        x, _ = xy
        con = x == 2
        assert con.violation({x: 2.5}) == pytest.approx(0.5)

    def test_violation_ge(self, xy):
        x, _ = xy
        con = x >= 2
        assert con.violation({x: 0.5}) == pytest.approx(1.5)

    def test_expr_vs_expr(self, xy):
        x, y = xy
        con = 2 * x <= y + 1
        # Normalized: 2x - y - 1 <= 0.
        assert con.rhs == pytest.approx(1.0)
        assert con.expr.coefficient(y) == -1.0
