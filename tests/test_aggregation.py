"""Unit tests for the Section 6 aggregation LP (Figure 9)."""

import pytest

from repro.core import AggregationProblem, ingress_result


class TestAggregationLP:
    def test_coverage_sums_to_one(self, line_state):
        result = AggregationProblem(line_state, beta=1e-9).solve()
        for cls in line_state.classes:
            total = sum(result.process_fractions[cls.name].values())
            assert total == pytest.approx(1.0, abs=1e-6)

    def test_beta_zero_balances_load(self, line_state):
        result = AggregationProblem(line_state, beta=0.0).solve()
        # With no communication penalty, the LP is free to balance:
        # 1500 work over 4 nodes with cap 1000 -> 0.375.
        assert result.load_cost == pytest.approx(0.375, abs=1e-6)

    def test_huge_beta_concentrates_at_aggregation_point(self,
                                                         line_state):
        result = AggregationProblem(line_state, beta=1e6).solve()
        # Distance-0 processing (at the ingress) makes CommCost zero.
        assert result.comm_cost == pytest.approx(0.0, abs=1e-3)
        for cls in line_state.classes:
            fractions = result.process_fractions[cls.name]
            assert fractions[cls.ingress] == pytest.approx(1.0,
                                                           abs=1e-6)

    def test_huge_beta_matches_ingress_loads(self, line_state):
        aggregated = AggregationProblem(line_state, beta=1e6).solve()
        ingress = ingress_result(line_state)
        assert aggregated.load_cost == pytest.approx(
            ingress.load_cost, abs=1e-6)

    def test_comm_cost_formula(self, line_state):
        result = AggregationProblem(line_state, beta=1e-9).solve()
        expected = 0.0
        for cls in line_state.classes:
            for node, fraction in \
                    result.process_fractions[cls.name].items():
                distance = line_state.routing.hop_count(node,
                                                        cls.ingress)
                expected += (cls.num_sessions * fraction *
                             cls.record_bytes * distance)
        assert result.comm_cost == pytest.approx(expected, rel=1e-6)

    def test_tradeoff_monotone_in_beta(self, line_state):
        base = AggregationProblem(line_state).suggested_beta()
        betas = [base * m for m in (0.01, 0.1, 1.0, 10.0, 100.0)]
        loads, comms = [], []
        for beta in betas:
            result = AggregationProblem(line_state, beta=beta).solve()
            loads.append(result.load_cost)
            comms.append(result.comm_cost)
        # Raising beta never raises comm cost and never lowers load.
        for i in range(len(betas) - 1):
            assert comms[i + 1] <= comms[i] + 1e-6
            assert loads[i + 1] >= loads[i] - 1e-6

    def test_objective_value(self, line_state):
        beta = AggregationProblem(line_state).suggested_beta()
        result = AggregationProblem(line_state, beta=beta).solve()
        assert result.objective == pytest.approx(
            result.load_cost + beta * result.comm_cost, rel=1e-9)

    def test_imbalance_improves_over_ingress(self, line_state):
        base = AggregationProblem(line_state).suggested_beta()
        aggregated = AggregationProblem(line_state, beta=base).solve()
        ingress = ingress_result(line_state)
        assert (aggregated.load_imbalance() <=
                ingress.load_imbalance() + 1e-9)

    def test_custom_aggregation_point(self, line_state):
        # Send all reports to D instead of each ingress.
        result = AggregationProblem(
            line_state, beta=1e6,
            aggregation_point=lambda cls: "D").solve()
        for cls in line_state.classes:
            fractions = result.process_fractions[cls.name]
            if "D" in cls.path:
                assert fractions["D"] == pytest.approx(1.0, abs=1e-6)

    def test_negative_beta_rejected(self, line_state):
        with pytest.raises(ValueError):
            AggregationProblem(line_state, beta=-1.0)

    def test_suggested_beta_positive(self, line_state):
        assert AggregationProblem(line_state).suggested_beta() > 0
