"""Unit tests for slack provisioning and failure handling (Section 9)."""

import numpy as np
import pytest

from repro.core import (
    MirrorPolicy,
    NetworkState,
    ReplicationProblem,
    cascade_risk,
    fail_node,
    provisioning_shortfall,
    slack_factor,
    with_slack,
)
from repro.topology.topology import Topology
from repro.traffic import TrafficVariabilityModel


class TestSlack:
    def test_p80_factor_above_one(self):
        model = TrafficVariabilityModel.default()
        p80 = slack_factor(model, 80.0)
        assert p80 > 1.0

    def test_percentiles_monotone(self):
        model = TrafficVariabilityModel.default()
        p50 = slack_factor(model, 50.0)
        p80 = slack_factor(model, 80.0)
        p95 = slack_factor(model, 95.0)
        assert p50 < p80 < p95

    def test_percentile_validation(self):
        model = TrafficVariabilityModel.default()
        with pytest.raises(ValueError):
            slack_factor(model, 0.0)
        with pytest.raises(ValueError):
            slack_factor(model, 100.0)

    def test_with_slack_scales_volumes(self, line_classes):
        slacked = with_slack(line_classes, 1.5)
        for old, new in zip(line_classes, slacked):
            assert new.num_sessions == pytest.approx(
                1.5 * old.num_sessions)

    def test_with_slack_rejects_nonpositive(self, line_classes):
        with pytest.raises(ValueError):
            with_slack(line_classes, 0.0)

    def test_shortfall(self):
        assert provisioning_shortfall(0.8) == 0.0
        assert provisioning_shortfall(1.3) == pytest.approx(0.3)

    def test_slack_reduces_worst_case_overshoot(self, line_topology,
                                                line_classes):
        """Provision against p80 traffic, then evaluate bursts: the
        slacked provisioning overshoots less than mean provisioning."""
        model = TrafficVariabilityModel.default()
        factor = slack_factor(model, 80.0)

        mean_state = NetworkState.calibrated(
            line_topology, line_classes, dc_capacity_factor=10.0)
        slack_state = NetworkState.calibrated(
            line_topology, with_slack(line_classes, factor),
            dc_capacity_factor=10.0)

        rng = np.random.default_rng(0)
        burst = [c.scaled(model.sample_factor(rng) * 1.5)
                 for c in line_classes]
        mean_peak = ReplicationProblem(
            mean_state.with_traffic(burst),
            mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=0.4).solve().load_cost
        slack_peak = ReplicationProblem(
            slack_state.with_traffic(burst),
            mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=0.4).solve().load_cost
        assert slack_peak <= mean_peak + 1e-9


class TestFailures:
    def test_transit_failure_reroutes(self, diamond_topology):
        from repro.traffic.classes import TrafficClass

        cls = TrafficClass("A->D", "A", "D", ("A", "B", "D"), 100.0)
        state = NetworkState.calibrated(diamond_topology, [cls])
        new_state, impact = fail_node(state, "B")
        assert impact.rerouted_classes == ["A->D"]
        assert impact.dropped_classes == []
        assert impact.lost_fraction == 0.0
        rerouted = new_state.class_by_name("A->D")
        assert "B" not in rerouted.path
        assert rerouted.path == ("A", "C", "D")

    def test_endpoint_failure_drops_classes(self, line_state):
        new_state, impact = fail_node(line_state, "D")
        assert "A->D" in impact.dropped_classes
        assert impact.lost_fraction == pytest.approx(1000.0 / 1500.0)
        assert all("D" not in cls.path for cls in new_state.classes)

    def test_failed_state_is_solvable(self, diamond_topology):
        from repro.traffic.classes import TrafficClass

        classes = [
            TrafficClass("A->D", "A", "D", ("A", "B", "D"), 100.0),
            TrafficClass("B->C", "B", "C", ("B", "C"), 50.0),
        ]
        state = NetworkState.calibrated(diamond_topology, classes)
        new_state, _ = fail_node(state, "B")
        result = ReplicationProblem(
            new_state, mirror_policy=MirrorPolicy.none()).solve()
        assert result.load_cost > 0.0

    def test_disconnecting_failure_detected(self):
        from repro.traffic.classes import TrafficClass

        # A - B - C: losing B disconnects A from C.
        topo = Topology("chain3", ["A", "B", "C"],
                        [("A", "B"), ("B", "C")])
        cls = TrafficClass("A->C", "A", "C", ("A", "B", "C"), 10.0)
        state = NetworkState.calibrated(topo, [cls])
        with pytest.raises(ValueError):
            fail_node(state, "B")

    def test_unknown_node_rejected(self, line_state):
        with pytest.raises(ValueError):
            fail_node(line_state, "nope")

    def test_dc_failure_clears_dc_marker(self, line_state_dc):
        new_state, impact = fail_node(line_state_dc, "DC")
        assert new_state.dc_node is None
        assert impact.dropped_classes == []

    def test_capacities_carry_over(self, line_state):
        new_state, _ = fail_node(line_state, "D")
        for node in new_state.nids_nodes:
            assert new_state.capacity("cpu", node) == \
                line_state.capacity("cpu", node)

    def test_cascade_risk_on_chain(self):
        from repro.traffic.classes import TrafficClass

        topo = Topology("chain4", ["A", "B", "C", "D"],
                        [("A", "B"), ("B", "C"), ("C", "D")])
        cls = TrafficClass("A->D", "A", "D", ("A", "B", "C", "D"),
                           10.0)
        state = NetworkState.calibrated(topo, [cls])
        risky = cascade_risk(state)
        assert risky == ["B", "C"]

    def test_cascade_risk_on_redundant_topology(self, diamond_topology):
        from repro.traffic.classes import TrafficClass

        cls = TrafficClass("A->D", "A", "D", ("A", "B", "D"), 10.0)
        state = NetworkState.calibrated(diamond_topology, [cls])
        assert cascade_risk(state) == []


class TestLinkFailures:
    def test_link_failure_reroutes(self, diamond_topology):
        from repro.core import fail_link
        from repro.traffic.classes import TrafficClass

        cls = TrafficClass("A->D", "A", "D", ("A", "B", "D"), 100.0)
        state = NetworkState.calibrated(diamond_topology, [cls])
        new_state, impact = fail_link(state, "B", "D")
        assert impact.rerouted_classes == ["A->D"]
        assert impact.lost_sessions == 0.0
        assert new_state.class_by_name("A->D").path == ("A", "C", "D")

    def test_unused_link_failure_is_noop_for_classes(
            self, diamond_topology):
        from repro.core import fail_link
        from repro.traffic.classes import TrafficClass

        cls = TrafficClass("A->D", "A", "D", ("A", "B", "D"), 100.0)
        state = NetworkState.calibrated(diamond_topology, [cls])
        new_state, impact = fail_link(state, "A", "C")
        assert impact.rerouted_classes == []
        assert new_state.class_by_name("A->D").path == ("A", "B", "D")

    def test_bridge_link_failure_detected(self, line_state):
        from repro.core import fail_link

        with pytest.raises(ValueError):
            fail_link(line_state, "B", "C")

    def test_unknown_link_rejected(self, diamond_topology):
        from repro.core import fail_link
        from repro.traffic.classes import TrafficClass

        cls = TrafficClass("A->D", "A", "D", ("A", "B", "D"), 100.0)
        state = NetworkState.calibrated(diamond_topology, [cls])
        with pytest.raises(ValueError):
            fail_link(state, "A", "D")

    def test_failed_link_state_solvable(self, diamond_topology):
        from repro.core import (MirrorPolicy, ReplicationProblem,
                                fail_link)
        from repro.traffic.classes import TrafficClass

        cls = TrafficClass("A->D", "A", "D", ("A", "B", "D"), 100.0)
        state = NetworkState.calibrated(diamond_topology, [cls])
        new_state, _ = fail_link(state, "B", "D")
        result = ReplicationProblem(
            new_state, mirror_policy=MirrorPolicy.none()).solve()
        assert 0.0 < result.load_cost <= 1.0 + 1e-9
