"""Property-based tests for consistent reconfiguration (Section 9).

For arbitrary old/new LP-style fraction layouts and arbitrary
acknowledgement orders, an :class:`OverlapTransition` must leave no
point of any class's hash space unowned at any step, and the overlap's
union may only *add* work (duplication), never subtract coverage —
the paper's correctness requirement for zero-gap reconfiguration.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.transitions import OverlapTransition, union_config
from repro.runtime.rollout import coverage_report
from repro.shim.config import ShimAction, ShimConfig, ShimRule
from repro.shim.diff import ConfigDelta, apply_delta, diff_configs
from repro.shim.ranges import compile_hash_ranges
from repro.traffic.classes import TrafficClass

NODES = ["N0", "N1", "N2", "N3", "N4"]

CLASS = TrafficClass(
    name="N0->N4", source="N0", target="N4", path=list(NODES),
    num_sessions=100.0, session_bytes=1000.0)

EPS = 1e-9


def _configs_from_weights(weights) -> dict:
    """Compile a per-node weight vector into per-node shim configs
    (the Section 7.1 layout over the class's path)."""
    total = sum(weights)
    fractions = [w / total for w in weights]
    fractions[-1] = 1.0 - sum(fractions[:-1])  # exact unit sum
    entries = [(("process", node), fraction)
               for node, fraction in zip(NODES, fractions)]
    configs = {node: ShimConfig(node=node, rules={})
               for node in NODES}
    for rng in compile_hash_ranges(entries):
        _, node = rng.key
        configs[node].rules.setdefault(CLASS.name, []).append(
            ShimRule(CLASS.name, rng, ShimAction.PROCESS))
    return configs


def _masses(configs):
    """(union coverage, total owned mass) across on-path rules."""
    report = coverage_report([CLASS], dict(configs))
    union = report.class_coverage[CLASS.name]
    total = union + report.class_duplication[CLASS.name]
    return union, total


weight_vectors = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    min_size=len(NODES), max_size=len(NODES),
).filter(lambda ws: sum(ws) > 0.01)


class TestOverlapNeverUncovers:
    @settings(max_examples=60, deadline=None)
    @given(old_weights=weight_vectors, new_weights=weight_vectors,
           order=st.permutations(NODES))
    def test_no_unowned_point_at_any_step(self, old_weights,
                                          new_weights, order):
        """At every transition step — before begin, during overlap
        after each ack (in any order), and after completion — the
        class's full hash space stays owned, and ownership never
        exceeds old+new mass (duplication only adds work)."""
        old = _configs_from_weights(old_weights)
        new = _configs_from_weights(new_weights)
        transition = OverlapTransition(old, new)

        union, total = _masses(transition.active_configs())
        assert union >= 1.0 - EPS          # before: old covers all
        assert total <= 1.0 + EPS          # ... exactly once

        transition.begin()
        for node in order:
            union, total = _masses(transition.active_configs())
            assert union >= 1.0 - EPS      # never a gap mid-rollout
            assert total <= 2.0 + EPS      # at most old+new work
            assert total >= union - EPS
            transition.acknowledge(node)

        union, total = _masses(transition.active_configs())
        assert union >= 1.0 - EPS          # after: new covers all
        assert total <= 1.0 + EPS

    @settings(max_examples=60, deadline=None)
    @given(old_weights=weight_vectors, new_weights=weight_vectors)
    def test_union_config_mass_is_additive(self, old_weights,
                                           new_weights):
        """union_config keeps every rule of both configs: per node the
        merged mass equals the sum of the parts (work is duplicated,
        never dropped)."""
        old = _configs_from_weights(old_weights)
        new = _configs_from_weights(new_weights)
        for node in NODES:
            merged = union_config(old[node], new[node])
            assert merged.num_rules == (old[node].num_rules +
                                        new[node].num_rules)
            merged_mass = sum(
                rule.hash_range.width
                for rule in merged.rules_for(CLASS.name))
            parts_mass = sum(
                rule.hash_range.width
                for cfg in (old[node], new[node])
                for rule in cfg.rules_for(CLASS.name))
            assert abs(merged_mass - parts_mass) <= EPS


class TestDeltaRolloutNeverUncovers:
    """The delta strategy's phase ordering (all installs land before
    any retire goes out) gives the same zero-gap guarantee as full
    overlap, with the deltas applied node-by-node in any order."""

    @settings(max_examples=60, deadline=None)
    @given(old_weights=weight_vectors, new_weights=weight_vectors,
           install_order=st.permutations(NODES),
           retire_order=st.permutations(NODES))
    def test_no_unowned_point_under_any_interleaving(
            self, old_weights, new_weights, install_order,
            retire_order):
        old = _configs_from_weights(old_weights)
        new = _configs_from_weights(new_weights)
        deltas = diff_configs(old, new)
        running = dict(old)

        union, total = _masses(running)
        assert union >= 1.0 - EPS          # before: old covers all

        for node in install_order:         # install phase, any order
            running[node] = apply_delta(
                running[node],
                ConfigDelta(node=node,
                            installs=deltas[node].installs))
            union, total = _masses(running)
            assert union >= 1.0 - EPS      # never a gap mid-rollout
            assert total <= 2.0 + EPS      # at most old+new work

        for node in retire_order:          # retires only after acks
            running[node] = apply_delta(
                running[node],
                ConfigDelta(node=node,
                            retires=deltas[node].retires))
            union, total = _masses(running)
            assert union >= 1.0 - EPS      # retires never uncover

        union, total = _masses(running)
        assert total <= 1.0 + EPS          # after: exactly new

    @settings(max_examples=60, deadline=None)
    @given(old_weights=weight_vectors, new_weights=weight_vectors)
    def test_deltas_converge_on_fresh_compile(self, old_weights,
                                              new_weights):
        from repro.shim.diff import canonical_config

        old = _configs_from_weights(old_weights)
        new = _configs_from_weights(new_weights)
        deltas = diff_configs(old, new)
        for node in NODES:
            assert apply_delta(old[node], deltas[node]) == \
                canonical_config(new[node])
