"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestTopologies:
    def test_lists_all_builtins(self, capsys):
        assert main(["topologies"]) == 0
        out = capsys.readouterr().out
        for name in ("internet2", "geant", "ntt"):
            assert name in out


class TestSolve:
    def test_replication_default(self, capsys):
        assert main(["solve", "internet2"]) == 0
        out = capsys.readouterr().out
        assert "LoadCost" in out
        assert "replicated classes" in out

    def test_replication_no_mirror(self, capsys):
        assert main(["solve", "internet2", "--mirror", "none"]) == 0
        out = capsys.readouterr().out
        assert "LoadCost" in out

    def test_aggregation(self, capsys):
        assert main(["solve", "internet2",
                     "--formulation", "aggregation"]) == 0
        out = capsys.readouterr().out
        assert "comm cost" in out

    def test_split(self, capsys):
        assert main(["solve", "internet2",
                     "--formulation", "split"]) == 0
        out = capsys.readouterr().out
        assert "miss rate" in out

    def test_nips(self, capsys):
        assert main(["solve", "internet2",
                     "--formulation", "nips"]) == 0
        out = capsys.readouterr().out
        assert "detour" in out

    def test_combined(self, capsys):
        assert main(["solve", "internet2",
                     "--formulation", "combined"]) == 0
        out = capsys.readouterr().out
        assert "comm cost" in out

    def test_top_limits_rows(self, capsys):
        assert main(["solve", "internet2", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "top 3 node loads" in out

    def test_unknown_topology_rejected(self):
        with pytest.raises(SystemExit):
            main(["solve", "arpanet"])


class TestCompare:
    def test_compare_internet2(self, capsys):
        assert main(["compare", "internet2"]) == 0
        out = capsys.readouterr().out
        assert "ingress" in out
        assert "path-replicate" in out
        assert "dc+one-hop" in out


class TestExperiment:
    def test_fig13(self, capsys):
        assert main(["experiment", "fig13"]) == 0
        out = capsys.readouterr().out
        assert "Figure 13" in out

    def test_all_runs_every_experiment(self, capsys, monkeypatch):
        import repro.cli as cli

        monkeypatch.setattr(cli, "_EXPERIMENTS", {
            "alpha": lambda: "ALPHA TABLE",
            "beta": lambda: "BETA TABLE",
        })
        assert main(["experiment", "all"]) == 0
        out = capsys.readouterr().out
        assert "==== alpha ====" in out
        assert "ALPHA TABLE" in out
        assert "==== beta ====" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
