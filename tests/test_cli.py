"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestTopologies:
    def test_lists_all_builtins(self, capsys):
        assert main(["topologies"]) == 0
        out = capsys.readouterr().out
        for name in ("internet2", "geant", "ntt"):
            assert name in out


class TestSolve:
    def test_replication_default(self, capsys):
        assert main(["solve", "internet2"]) == 0
        out = capsys.readouterr().out
        assert "LoadCost" in out
        assert "replicated classes" in out

    def test_replication_no_mirror(self, capsys):
        assert main(["solve", "internet2", "--mirror", "none"]) == 0
        out = capsys.readouterr().out
        assert "LoadCost" in out

    def test_aggregation(self, capsys):
        assert main(["solve", "internet2",
                     "--formulation", "aggregation"]) == 0
        out = capsys.readouterr().out
        assert "comm cost" in out

    def test_split(self, capsys):
        assert main(["solve", "internet2",
                     "--formulation", "split"]) == 0
        out = capsys.readouterr().out
        assert "miss rate" in out

    def test_nips(self, capsys):
        assert main(["solve", "internet2",
                     "--formulation", "nips"]) == 0
        out = capsys.readouterr().out
        assert "detour" in out

    def test_combined(self, capsys):
        assert main(["solve", "internet2",
                     "--formulation", "combined"]) == 0
        out = capsys.readouterr().out
        assert "comm cost" in out

    def test_top_limits_rows(self, capsys):
        assert main(["solve", "internet2", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "top 3 node loads" in out

    def test_unknown_topology_rejected(self):
        with pytest.raises(SystemExit):
            main(["solve", "arpanet"])


class TestCompare:
    def test_compare_internet2(self, capsys):
        assert main(["compare", "internet2"]) == 0
        out = capsys.readouterr().out
        assert "ingress" in out
        assert "path-replicate" in out
        assert "dc+one-hop" in out


class TestExperiment:
    def test_fig13(self, capsys):
        assert main(["experiment", "fig13"]) == 0
        out = capsys.readouterr().out
        assert "Figure 13" in out

    def test_all_runs_every_experiment(self, capsys, monkeypatch):
        import repro.cli as cli

        monkeypatch.setattr(cli, "_EXPERIMENTS", {
            "alpha": lambda jobs: "ALPHA TABLE",
            "beta": lambda jobs: "BETA TABLE",
        })
        assert main(["experiment", "all"]) == 0
        out = capsys.readouterr().out
        assert "==== alpha ====" in out
        assert "ALPHA TABLE" in out
        assert "==== beta ====" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestStats:
    def test_stats_reports_metrics(self, capsys):
        assert main(["stats", "internet2", "--sessions", "200"]) == 0
        out = capsys.readouterr().out
        assert "lp.solves" in out
        assert "shim.decision.process" in out
        assert "emulation.packets_per_second" in out
        assert "lp.solve.seconds" in out

    def test_stats_jsonl_is_schema_valid(self, capsys, tmp_path):
        from repro.obs import read_jsonl

        path = tmp_path / "stats.jsonl"
        assert main(["stats", "internet2", "--sessions", "200",
                     "--jsonl", str(path)]) == 0
        records = read_jsonl(path.read_text().splitlines())
        assert records[0]["type"] == "meta"
        names = {r.get("name") for r in records}
        # The acceptance-criteria trio: LP solve-phase timings, shim
        # decision counters, emulation throughput.
        assert "lp.solve.seconds" in names
        assert "shim.decision.process" in names
        assert "emulation.packets_per_second" in names

    def test_stats_restores_null_registry(self, capsys):
        from repro.obs import NULL_REGISTRY, get_registry

        assert main(["stats", "internet2", "--sessions", "100"]) == 0
        assert get_registry() is NULL_REGISTRY

    def test_stats_without_mirror_dc(self, capsys):
        assert main(["stats", "internet2", "--mirror", "none",
                     "--sessions", "100"]) == 0
        out = capsys.readouterr().out
        assert "controller.refreshes" in out

    def test_stats_unwritable_jsonl_is_clean_error(self, capsys):
        assert main(["stats", "internet2", "--sessions", "100",
                     "--jsonl", "/nonexistent-dir/x.jsonl"]) == 1
        err = capsys.readouterr().err
        assert "cannot write" in err


class TestScenario:
    def test_flash_crowd_prints_timeline(self, capsys):
        assert main(["scenario", "flash-crowd", "--epochs", "4"]) == 0
        out = capsys.readouterr().out
        assert "scenario 'flash-crowd'" in out
        assert "bootstrap" in out
        assert "surge" in out
        assert "fingerprint:" in out

    def test_report_json_and_timeline_written(self, capsys, tmp_path):
        import json

        from repro.obs import read_timeline_jsonl

        json_path = tmp_path / "report.json"
        timeline_path = tmp_path / "timeline.jsonl"
        assert main(["scenario", "steady-drift", "--epochs", "3",
                     "--seed", "5", "--json", str(json_path),
                     "--timeline", str(timeline_path)]) == 0
        report = json.loads(json_path.read_text())
        assert report["schema"] == 1
        assert len(report["epochs"]) == 3
        assert report["scenario"]["seed"] == 5
        records = read_timeline_jsonl(
            timeline_path.read_text().splitlines())
        assert records[0]["type"] == "timeline-meta"
        assert records[0]["source"] == "scenario:steady-drift"
        assert [r["epoch"] for r in records[1:]] == [0, 1, 2]

    def test_seed_override_changes_fingerprint(self, capsys):
        assert main(["scenario", "steady-drift", "--epochs", "2",
                     "--seed", "1"]) == 0
        first = capsys.readouterr().out
        assert main(["scenario", "steady-drift", "--epochs", "2",
                     "--seed", "2"]) == 0
        second = capsys.readouterr().out

        def fingerprint(out):
            for line in out.splitlines():
                if "fingerprint:" in line:
                    return line.split("fingerprint:")[1].strip()
            raise AssertionError("no fingerprint printed")

        assert fingerprint(first) != fingerprint(second)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["scenario", "meteor-strike"])

    def test_unwritable_json_is_clean_error(self, capsys):
        assert main(["scenario", "steady-drift", "--epochs", "2",
                     "--json", "/nonexistent-dir/x.json"]) == 1
        err = capsys.readouterr().err
        assert "cannot write" in err


class TestBudgetSweep:
    def test_prints_curve_and_writes_json(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "sweep.json"
        assert main(["budget-sweep", "--topology", "tinet",
                     "--budgets", "1,2,inf", "--mirror", "dc",
                     "--json", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "rule-budget sweep on tinet" in out
        assert "Linf err" in out
        payload = json.loads(out_path.read_text())
        assert payload["schema"] == 1
        assert payload["experiment"] == "budget-sweep"
        budgets = [pt["budget"]
                   for pt in payload["series"][0]["points"]]
        assert budgets == [1, 2, None]

    def test_bad_budget_rejected(self, capsys):
        assert main(["budget-sweep", "--topology", "tinet",
                     "--budgets", "0"]) == 2
        assert "budget" in capsys.readouterr().err

    def test_unknown_mirror_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["budget-sweep", "--mirror", "teleport"])


class TestShardGapCli:
    def test_prints_table_and_writes_json(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "shard-gap.json"
        assert main(["shard-gap", "--topology", "tinet",
                     "--regions", "2", "--jobs", "1",
                     "--json", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "sharded control plane on tinet" in out
        assert "Gap" in out
        payload = json.loads(out_path.read_text())
        assert payload["schema"] == 1
        assert payload["experiment"] == "shard-gap"
        (entry,) = payload["series"]
        assert [pt["regions"] for pt in entry["points"]] == [2]

    def test_bad_regions_rejected(self, capsys):
        assert main(["shard-gap", "--topology", "tinet",
                     "--regions", "0"]) == 2
        assert "region" in capsys.readouterr().err

    def test_empty_regions_rejected(self, capsys):
        assert main(["shard-gap", "--topology", "tinet",
                     "--regions", " "]) == 2
        assert "region" in capsys.readouterr().err

    def test_unknown_topology_rejected(self):
        with pytest.raises(SystemExit):
            main(["shard-gap", "--topology", "atlantis"])


class TestSketchGapCli:
    def test_prints_table_and_writes_json(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "sketch-gap.json"
        assert main(["sketch-gap", "--topology", "internet2",
                     "--widths", "256,512", "--sessions", "1500",
                     "--json", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "sketch estimator on internet2" in out
        assert "sampling floor" in out
        payload = json.loads(out_path.read_text())
        assert payload["schema"] == 1
        assert payload["experiment"] == "sketch-gap"
        (entry,) = payload["series"]
        assert [pt["width"] for pt in entry["points"]] == [256, 512]

    def test_bad_widths_rejected(self, capsys):
        assert main(["sketch-gap", "--topology", "internet2",
                     "--widths", "0"]) == 2
        assert "width" in capsys.readouterr().err

    def test_empty_widths_rejected(self, capsys):
        assert main(["sketch-gap", "--topology", "internet2",
                     "--widths", " "]) == 2
        assert "width" in capsys.readouterr().err

    def test_unknown_topology_rejected(self):
        with pytest.raises(SystemExit):
            main(["sketch-gap", "--topology", "atlantis"])


class TestTraceFollowCli:
    def test_follow_streams_store_through_ingest(self, capsys,
                                                 tmp_path):
        store_dir = tmp_path / "store"
        assert main(["trace", "pack", str(store_dir),
                     "--topology", "internet2",
                     "--sessions", "800", "--seed", "3"]) == 0
        capsys.readouterr()
        assert main(["trace", "replay", str(store_dir),
                     "--follow", "--chunk", "256",
                     "--width", "512"]) == 0
        out = capsys.readouterr().out
        assert "followed" in out
        assert "resident high-water" in out
        assert "top 5 estimated classes" in out


class TestScenarioStrategy:
    def test_delta_strategy_flag(self, capsys, tmp_path):
        import json

        json_path = tmp_path / "report.json"
        assert main(["scenario", "steady-drift", "--epochs", "3",
                     "--strategy", "delta", "--json",
                     str(json_path)]) == 0
        report = json.loads(json_path.read_text())
        assert report["scenario"]["strategy"] == "delta"
        installed = [epoch["rules_installed"]
                     for epoch in report["epochs"]
                     if epoch["rules_installed"] is not None]
        assert installed and all(n >= 0 for n in installed)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SystemExit):
            main(["scenario", "steady-drift", "--strategy", "magic"])
