"""Unit tests for the Section 5 split-traffic LP."""

import pytest

from repro.core import (
    NetworkState,
    SplitTrafficProblem,
    ingress_split_result,
)
from repro.traffic.classes import TrafficClass


@pytest.fixture
def disjoint_topology():
    """Two node-disjoint A->D routes plus a DC anchor at B.

    Forward path A-B-D, reverse path D-C-A (only endpoints shared).
    """
    from repro.topology.topology import Topology

    return Topology(
        "disjoint", ["A", "B", "C", "D"],
        [("A", "B"), ("B", "D"), ("A", "C"), ("C", "D")],
        populations={"A": 1.0, "B": 1.0, "C": 1.0, "D": 1.0})


def make_state(topology, classes, dc_factor=10.0):
    return NetworkState.calibrated(topology, classes,
                                   dc_capacity_factor=dc_factor,
                                   dc_anchor="B")


class TestSymmetricDegeneratesToCoverage:
    def test_symmetric_classes_fully_covered(self, line_topology,
                                             line_classes):
        state = NetworkState.calibrated(line_topology, line_classes,
                                        dc_capacity_factor=10.0)
        result = SplitTrafficProblem(state, max_link_load=0.4).solve()
        assert result.miss_rate == pytest.approx(0.0, abs=1e-6)
        for cov in result.coverage.values():
            assert cov == pytest.approx(1.0, abs=1e-6)


class TestAsymmetricCoverage:
    @pytest.fixture
    def split_class(self):
        # Fwd A-B-D, rev D-C-A: common nodes are only the endpoints...
        # but endpoints A and D *are* common, so to model a truly
        # split session we use interior-disjoint paths where only
        # transit nodes are NIDS-capable via common set {A, D}.
        return TrafficClass(
            "A<->D", "A", "D", ("A", "B", "D"), 100.0,
            session_bytes=1000.0, rev_path=("D", "C", "A"))

    def test_common_nodes_give_coverage(self, disjoint_topology,
                                        split_class):
        state = make_state(disjoint_topology, [split_class])
        result = SplitTrafficProblem(state, allow_offload=False).solve()
        # A and D see both directions, so coverage is attainable.
        assert result.miss_rate == pytest.approx(0.0, abs=1e-6)

    @pytest.fixture
    def offload_only_state(self, disjoint_topology):
        """A class whose two directions share no observer (B sees fwd,
        C sees rev), plus a symmetric filler class that gives links a
        realistic background so calibration is meaningful."""
        split = TrafficClass("split", "B", "B", ("B",), 100.0,
                             session_bytes=1000.0, rev_path=("C",))
        filler = TrafficClass("fill", "A", "D", ("A", "B", "D"), 400.0,
                              session_bytes=1000.0)
        return make_state(disjoint_topology, [split, filler])

    def test_no_common_nodes_requires_offload(self, offload_only_state):
        no_offload = SplitTrafficProblem(offload_only_state,
                                         allow_offload=False).solve()
        # Only the split class (100 of 500 sessions) can miss.
        assert no_offload.miss_rate == pytest.approx(0.2, abs=1e-6)
        assert no_offload.coverage["split"] == pytest.approx(0.0,
                                                             abs=1e-6)
        with_offload = SplitTrafficProblem(offload_only_state,
                                           max_link_load=0.4).solve()
        assert with_offload.miss_rate == pytest.approx(0.0, abs=1e-6)

    def test_coverage_is_min_of_directions(self, offload_only_state):
        result = SplitTrafficProblem(offload_only_state,
                                     max_link_load=0.4).solve()
        cov = result.coverage["split"]
        fwd = sum(result.fwd_offloads.get("split", {}).values())
        rev = sum(result.rev_offloads.get("split", {}).values())
        assert cov <= min(fwd, rev, 1.0) + 1e-6

    def test_link_budget_creates_misses(self, offload_only_state):
        # Offload-only coverage with a zero link budget is infeasible,
        # so the optimizer accepts misses instead.
        result = SplitTrafficProblem(offload_only_state,
                                     max_link_load=0.0).solve()
        assert result.coverage["split"] == pytest.approx(0.0, abs=1e-6)
        assert result.miss_rate == pytest.approx(0.2, abs=1e-6)

    def test_gamma_prioritizes_coverage(self, offload_only_state):
        state = offload_only_state
        high_gamma = SplitTrafficProblem(state, gamma=1000.0,
                                         max_link_load=0.4).solve()
        zero_gamma = SplitTrafficProblem(state, gamma=0.0,
                                         max_link_load=0.4).solve()
        assert high_gamma.miss_rate <= zero_gamma.miss_rate + 1e-9
        # With gamma=0 covering is pointless work; the LP skips it.
        assert zero_gamma.load_cost == pytest.approx(0.0, abs=1e-6)


class TestIngressBaseline:
    def test_symmetric_ingress_covers_everything(self, line_topology,
                                                 line_classes):
        state = NetworkState.calibrated(line_topology, line_classes)
        result = ingress_split_result(state)
        assert result.miss_rate == pytest.approx(0.0)
        assert result.load_cost == pytest.approx(1.0)

    def test_asymmetric_ingress_misses(self, disjoint_topology):
        cls = TrafficClass(
            "A<->D", "A", "D", ("A", "B", "D"), 100.0,
            session_bytes=1000.0, rev_path=("D", "C", "B"))
        state = make_state(disjoint_topology, [cls])
        result = ingress_split_result(state)
        # Gateway A never sees the reverse direction.
        assert result.miss_rate == pytest.approx(1.0)
        # And it only spends half the footprint (forward side only).
        gateway_load = result.node_loads["cpu"]["A"]
        full = (cls.footprint("cpu") * cls.num_sessions /
                state.capacity("cpu", "A"))
        assert gateway_load == pytest.approx(full / 2.0)

    def test_mixed_coverage(self, disjoint_topology):
        covered = TrafficClass(
            "cov", "A", "D", ("A", "B", "D"), 300.0,
            session_bytes=1000.0, rev_path=("D", "B", "A"))
        missed = TrafficClass(
            "miss", "A", "D", ("A", "C", "D"), 100.0,
            session_bytes=1000.0, rev_path=("D", "B", "C"))
        state = make_state(disjoint_topology, [covered, missed])
        result = ingress_split_result(state)
        assert result.coverage["cov"] == 1.0
        assert result.coverage["miss"] == 0.0
        assert result.miss_rate == pytest.approx(0.25)


class TestMissObjectiveModes:
    @pytest.fixture
    def two_class_state(self, disjoint_topology):
        """A cheap-to-cover class and an expensive-to-cover one."""
        easy = TrafficClass("easy", "A", "D", ("A", "B", "D"), 900.0,
                            session_bytes=1000.0,
                            rev_path=("D", "B", "A"))
        hard = TrafficClass("hard", "B", "B", ("B",), 100.0,
                            session_bytes=1000.0, rev_path=("C",))
        return make_state(disjoint_topology, [easy, hard])

    def test_max_mode_protects_worst_class(self, two_class_state):
        """Under a choked link budget the total-miss objective happily
        sacrifices the small 'hard' class; the max-miss objective
        still reports its coverage as the binding quantity."""
        result = SplitTrafficProblem(two_class_state,
                                     max_link_load=0.0,
                                     miss_mode="max").solve()
        # Link budget 0 makes 'hard' uncoverable either way...
        assert result.coverage["hard"] == pytest.approx(0.0, abs=1e-6)
        # ...but 'easy' must still be fully covered.
        assert result.coverage["easy"] == pytest.approx(1.0, abs=1e-6)

    def test_weighted_mode_prioritizes(self, two_class_state):
        result = SplitTrafficProblem(
            two_class_state, max_link_load=0.4,
            miss_mode="weighted",
            miss_weights={"easy": 10.0, "hard": 1.0}).solve()
        assert result.coverage["easy"] == pytest.approx(1.0, abs=1e-6)

    def test_weighted_zero_weight_ignored(self, two_class_state):
        """A zero-weight class gets no coverage incentive at all."""
        result = SplitTrafficProblem(
            two_class_state, max_link_load=0.4,
            miss_mode="weighted",
            miss_weights={"easy": 1.0}).solve()
        assert result.coverage["easy"] == pytest.approx(1.0, abs=1e-6)
        assert result.coverage["hard"] == pytest.approx(0.0, abs=1e-6)

    def test_mode_validation(self, line_state_dc):
        with pytest.raises(ValueError):
            SplitTrafficProblem(line_state_dc, miss_mode="nope")
        with pytest.raises(ValueError):
            SplitTrafficProblem(line_state_dc, miss_mode="weighted")


class TestValidation:
    def test_offload_needs_datacenter(self, line_state):
        with pytest.raises(ValueError):
            SplitTrafficProblem(line_state)

    def test_no_offload_works_without_dc(self, line_state):
        result = SplitTrafficProblem(line_state,
                                     allow_offload=False).solve()
        assert result.miss_rate == pytest.approx(0.0, abs=1e-6)

    def test_negative_gamma_rejected(self, line_state_dc):
        with pytest.raises(ValueError):
            SplitTrafficProblem(line_state_dc, gamma=-1.0)
