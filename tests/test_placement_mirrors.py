"""Unit tests for datacenter placement and mirror-set policies."""

import pytest

from repro.core import (
    MirrorPolicy,
    place_datacenter,
)


class TestPlacement:
    def test_origin_strategy(self, line_topology, line_classes):
        # A originates 1000 sessions, B originates 500.
        assert place_datacenter(line_topology, line_classes,
                                strategy="origin") == "A"

    def test_observed_strategy(self, line_topology, line_classes):
        # B and C observe both classes (1500); tie broken to B.
        assert place_datacenter(line_topology, line_classes,
                                strategy="observed") == "B"

    def test_betweenness_strategy(self, line_topology, line_classes):
        assert place_datacenter(line_topology, line_classes,
                                strategy="betweenness") == "B"

    def test_medoid_strategy(self, line_topology, line_classes):
        # Mean distances on the chain: B and C tie at (1+1+2)/3.
        assert place_datacenter(line_topology, line_classes,
                                strategy="medoid") == "B"

    def test_unknown_strategy(self, line_topology, line_classes):
        with pytest.raises(ValueError):
            place_datacenter(line_topology, line_classes,
                             strategy="oracle")


class TestMirrorPolicies:
    def test_none_policy(self, line_state):
        sets = MirrorPolicy.none().mirror_sets(line_state)
        assert all(not mirrors for mirrors in sets.values())

    def test_datacenter_policy(self, line_state_dc):
        sets = MirrorPolicy.datacenter().mirror_sets(line_state_dc)
        for node, mirrors in sets.items():
            if node == "DC":
                assert mirrors == []
            else:
                assert mirrors == ["DC"]

    def test_datacenter_policy_requires_dc(self, line_state):
        with pytest.raises(ValueError):
            MirrorPolicy.datacenter().mirror_sets(line_state)

    def test_one_hop_neighbors(self, line_state):
        sets = MirrorPolicy.neighbors(hops=1).mirror_sets(line_state)
        assert sets["A"] == ["B"]
        assert sets["B"] == ["A", "C"]

    def test_two_hop_neighbors(self, line_state):
        sets = MirrorPolicy.neighbors(hops=2).mirror_sets(line_state)
        assert sets["A"] == ["B", "C"]

    def test_neighbors_exclude_dc(self, line_state_dc):
        sets = MirrorPolicy.neighbors(hops=1).mirror_sets(line_state_dc)
        assert "DC" not in sets["B"]  # B is the DC anchor

    def test_dc_plus_neighbors(self, line_state_dc):
        policy = MirrorPolicy.datacenter_plus_neighbors(hops=1)
        sets = policy.mirror_sets(line_state_dc)
        assert set(sets["A"]) == {"B", "DC"}
        assert sets["DC"] == []

    def test_all_nodes(self, line_state):
        sets = MirrorPolicy.all_nodes().mirror_sets(line_state)
        assert set(sets["A"]) == {"B", "C", "D"}
        assert "A" not in sets["A"]

    def test_invalid_hops(self):
        with pytest.raises(ValueError):
            MirrorPolicy.neighbors(hops=0)
        with pytest.raises(ValueError):
            MirrorPolicy.datacenter_plus_neighbors(hops=0)

    def test_describe(self):
        assert MirrorPolicy.none().describe() == "none"
        assert MirrorPolicy.neighbors(2).describe() == "neighbors(2-hop)"
        assert MirrorPolicy.datacenter().describe() == "datacenter"
