"""Unit tests for the experiment row dataclasses' derived metrics."""

import pytest

from repro.core import ArchitectureKind
from repro.experiments import (
    Fig11Series,
    Fig13Row,
    Fig14Row,
    Fig18Series,
    Fig19Row,
    SlackRow,
)
from repro.experiments.ablations import DCCapacitySeries
from repro.experiments.extensions_ablations import CombinedRow, FailureRow


class TestFig11Series:
    def test_knee_gain(self):
        series = Fig11Series("t", [0.0, 0.4, 1.0], [0.5, 0.22, 0.20])
        assert series.knee_gain(0.4) == pytest.approx(0.02)


class TestFig13Row:
    def test_gains(self):
        row = Fig13Row("t", {
            ArchitectureKind.INGRESS: 1.0,
            ArchitectureKind.PATH_NO_REPLICATE: 0.4,
            ArchitectureKind.PATH_AUGMENTED: 0.25,
            ArchitectureKind.PATH_REPLICATE: 0.2,
        })
        assert row.replication_gain_vs_ingress() == pytest.approx(5.0)
        assert row.replication_gain_vs_path() == pytest.approx(2.0)


class TestFig14Row:
    def test_gains(self):
        row = Fig14Row("t", {"path-no-replicate": 0.6,
                             "one-hop": 0.3, "two-hop": 0.25})
        assert row.one_hop_gain() == pytest.approx(2.0)
        assert row.two_hop_extra_gain() == pytest.approx(1.2)


class TestFig18Series:
    def test_normalization_and_best_point(self):
        series = Fig18Series("t", betas=[1.0, 2.0, 3.0],
                             load_costs=[0.2, 0.5, 1.0],
                             comm_costs=[100.0, 40.0, 10.0])
        points = series.normalized_points
        assert points[0] == (pytest.approx(0.2), pytest.approx(1.0))
        assert points[2] == (pytest.approx(1.0), pytest.approx(0.1))
        # Middle point (0.5, 0.4) is nearest the origin.
        assert series.best_beta() == 2.0
        assert series.best_point() == (pytest.approx(0.5),
                                       pytest.approx(0.4))

    def test_zero_costs_handled(self):
        series = Fig18Series("t", [1.0], [0.0], [0.0])
        assert series.best_point() == (0.0, 0.0)


class TestFig19Row:
    def test_improvement(self):
        row = Fig19Row("t", 5.4, 2.0, best_beta=1e-9)
        assert row.improvement == pytest.approx(2.7)

    def test_zero_denominator(self):
        row = Fig19Row("t", 5.4, 0.0, best_beta=1e-9)
        assert row.improvement == float("inf")


class TestDCCapacitySeries:
    def test_knee_capacity(self):
        series = DCCapacitySeries("t", 0.4, [1, 2, 4, 8, 16],
                                  [0.5, 0.4, 0.3, 0.25, 0.249])
        assert series.knee_capacity(tolerance=0.02) == 8

    def test_knee_at_end_when_still_improving(self):
        series = DCCapacitySeries("t", 0.4, [1, 2],
                                  [0.5, 0.3])
        assert series.knee_capacity(tolerance=0.01) == 2


class TestExtensionRows:
    def test_slack_improvement(self):
        row = SlackRow("t", 80.0, 0.8, 0.5)
        assert row.improvement == pytest.approx(1.6)

    def test_combined_gain(self):
        row = CombinedRow("t", 1.0, 0.8, 0.5, 0.4)
        assert row.objective_gain == pytest.approx(1.25)

    def test_failure_row_fields(self):
        row = FailureRow("t", "N1", 0.2, 0.25, 0.1, 12, 0.05)
        assert row.failed_node == "N1"
        assert row.load_after > row.load_before
