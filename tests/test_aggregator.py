"""Unit tests for scan-report aggregation, including the Figure 8
motivating example (two sources, four destinations, two flows per
pair, two two-node paths)."""

import pytest

from repro.nids import (
    ScanAggregator,
    ScanDetector,
    SplitStrategy,
    aggregate_reports,
    report_cost_record_hops,
)
from repro.nids.reports import SourceCountReport


def figure8_flows():
    """The Figure 8 scenario: s1, s2 each contact d1..d4; path 1
    carries destinations d1, d2 (nodes N2, N3), path 2 carries d3, d4
    (nodes N4, N5); two flows per src-dst pair."""
    flows = []
    for src in (1, 2):
        for dst in (11, 12, 13, 14):
            for flow in range(2):
                path = "p1" if dst in (11, 12) else "p2"
                flows.append((src, dst, path, flow))
    return flows


class TestFigure8Strategies:
    """All three splits must agree with centralized counting; their
    costs must order as the paper argues (source-level cheapest)."""

    def centralized_counts(self):
        det = ScanDetector()
        for src, dst, _, flow in figure8_flows():
            det.observe_flow(src, dst, flow_key=(src, dst, flow))
        return {src: det.destination_count(src) for src in (1, 2)}

    def test_flow_level_correct_with_tuple_reports(self):
        # Flow split: alternate flows of the same pair land on
        # different nodes -> per-src counters would double count, but
        # tuple reports union correctly.
        detectors = {n: ScanDetector() for n in ("N2", "N3", "N4", "N5")}
        for src, dst, path, flow in figure8_flows():
            nodes = ("N2", "N3") if path == "p1" else ("N4", "N5")
            node = nodes[flow % 2]
            detectors[node].observe_flow(src, dst)
        reports = [det.flow_tuple_report(node)
                   for node, det in detectors.items()]
        combined = aggregate_reports(SplitStrategy.FLOW_LEVEL, reports)
        assert combined == self.centralized_counts()

    def test_flow_level_counters_would_overcount(self):
        """Demonstrate the overcounting the paper warns about: summing
        per-src counters across a flow-level split is wrong."""
        detectors = {n: ScanDetector() for n in ("N2", "N3")}
        # Both flows of (s1, d1) land on different nodes.
        detectors["N2"].observe_flow(1, 11)
        detectors["N3"].observe_flow(1, 11)
        reports = [det.source_count_report(node)
                   for node, det in detectors.items()]
        combined = aggregate_reports(SplitStrategy.SOURCE_LEVEL, reports)
        assert combined[1] == 2  # wrong: the true count is 1

    def test_destination_level_correct(self):
        detectors = {n: ScanDetector() for n in ("N2", "N3", "N4", "N5")}
        owner = {11: "N2", 12: "N3", 13: "N4", 14: "N5"}
        for src, dst, _, flow in figure8_flows():
            detectors[owner[dst]].observe_flow(src, dst)
        reports = [det.destination_set_report(node)
                   for node, det in detectors.items()]
        combined = aggregate_reports(SplitStrategy.DESTINATION_LEVEL,
                                     reports)
        assert combined == self.centralized_counts()

    def test_source_level_correct(self):
        detectors = {n: ScanDetector() for n in ("N2", "N3", "N4", "N5")}
        for src, dst, path, _ in figure8_flows():
            nodes = ("N2", "N3") if path == "p1" else ("N4", "N5")
            node = nodes[0] if src == 1 else nodes[1]
            detectors[node].observe_flow(src, dst)
        reports = [det.source_count_report(node)
                   for node, det in detectors.items()]
        combined = aggregate_reports(SplitStrategy.SOURCE_LEVEL, reports)
        assert combined == self.centralized_counts()

    def test_source_split_cheaper_than_destination_split(self):
        """Paper: 6 record-hop units for source split vs 12 for
        destination split (aggregating at N1; N2/N4 one hop away,
        N3/N5 two hops)."""
        hop_distance = {"N2": 1, "N3": 2, "N4": 1, "N5": 2}

        dest_detectors = {n: ScanDetector()
                          for n in ("N2", "N3", "N4", "N5")}
        owner = {11: "N2", 12: "N3", 13: "N4", 14: "N5"}
        for src, dst, _, flow in figure8_flows():
            dest_detectors[owner[dst]].observe_flow(src, dst)
        dest_reports = [det.source_count_report(node)
                        for node, det in dest_detectors.items()]
        dest_hops, _ = report_cost_record_hops(dest_reports,
                                               hop_distance)
        assert dest_hops == 12.0  # 2 rows per node, hops 1+2+1+2

        src_detectors = {n: ScanDetector()
                         for n in ("N2", "N3", "N4", "N5")}
        for src, dst, path, _ in figure8_flows():
            nodes = ("N2", "N3") if path == "p1" else ("N4", "N5")
            node = nodes[0] if src == 1 else nodes[1]
            src_detectors[node].observe_flow(src, dst)
        src_reports = [det.source_count_report(node)
                       for node, det in src_detectors.items()]
        src_hops, _ = report_cost_record_hops(src_reports, hop_distance)
        assert src_hops == 6.0  # 1 row per node, hops 1+2+1+2
        assert src_hops < dest_hops


class TestAggregator:
    def test_threshold_at_aggregator_only(self):
        """Section 7.3: per-node counts below k can aggregate above k."""
        aggregator = ScanAggregator(threshold=3)
        aggregator.submit(SourceCountReport("N1", {7: 2}))
        aggregator.submit(SourceCountReport("N2", {7: 2}))
        assert aggregator.alerts() == [7]

    def test_below_threshold_not_flagged(self):
        aggregator = ScanAggregator(threshold=5)
        aggregator.submit(SourceCountReport("N1", {7: 2}))
        aggregator.submit(SourceCountReport("N2", {7: 2}))
        assert aggregator.alerts() == []

    def test_type_checking(self):
        aggregator = ScanAggregator(threshold=0,
                                    strategy=SplitStrategy.FLOW_LEVEL)
        aggregator.submit(SourceCountReport("N1", {1: 1}))
        with pytest.raises(TypeError):
            aggregator.alerts()

    def test_reset(self):
        aggregator = ScanAggregator(threshold=0)
        aggregator.submit(SourceCountReport("N1", {1: 1}))
        aggregator.reset()
        assert aggregator.num_reports == 0
        assert aggregator.alerts() == []

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            ScanAggregator(threshold=-1)
