"""Unit tests for application-level traffic classes."""

import pytest

from repro.core import MirrorPolicy, NetworkState, ReplicationProblem
from repro.traffic import (
    ApplicationProfile,
    DEFAULT_APPLICATION_MIX,
    TrafficMatrix,
    classes_with_applications,
    gravity_traffic_matrix,
    port_classifier_map,
    validate_mix,
)


class TestMixValidation:
    def test_default_mix_valid(self):
        validate_mix(DEFAULT_APPLICATION_MIX)

    def test_shares_must_sum_to_one(self):
        bad = (ApplicationProfile("a", 1, 0.5, 100.0),)
        with pytest.raises(ValueError):
            validate_mix(bad)

    def test_duplicate_names_rejected(self):
        bad = (ApplicationProfile("a", 1, 0.5, 100.0),
               ApplicationProfile("a", 2, 0.5, 100.0))
        with pytest.raises(ValueError):
            validate_mix(bad)

    def test_duplicate_ports_rejected(self):
        bad = (ApplicationProfile("a", 1, 0.5, 100.0),
               ApplicationProfile("b", 1, 0.5, 100.0))
        with pytest.raises(ValueError):
            validate_mix(bad)

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError):
            validate_mix(())


class TestClassGeneration:
    def test_one_class_per_pair_and_app(self, line_topology):
        matrix = gravity_traffic_matrix(line_topology, 1000.0)
        classes = classes_with_applications(line_topology, matrix)
        assert len(classes) == 12 * len(DEFAULT_APPLICATION_MIX)

    def test_volume_split_by_share(self, line_topology):
        matrix = TrafficMatrix({("A", "D"): 1000.0})
        classes = classes_with_applications(line_topology, matrix)
        by_app = {cls.name.split("/")[1]: cls for cls in classes}
        assert by_app["http"].num_sessions == pytest.approx(450.0)
        assert by_app["irc"].num_sessions == pytest.approx(50.0)
        total = sum(cls.num_sessions for cls in classes)
        assert total == pytest.approx(1000.0)

    def test_shared_path_per_pair(self, line_topology):
        matrix = TrafficMatrix({("A", "D"): 100.0})
        classes = classes_with_applications(line_topology, matrix)
        paths = {cls.path for cls in classes}
        assert len(paths) == 1  # footnote 1: same routing path

    def test_per_app_footprints_carried(self, line_topology):
        matrix = TrafficMatrix({("A", "D"): 100.0})
        classes = classes_with_applications(line_topology, matrix)
        by_app = {cls.name.split("/")[1]: cls for cls in classes}
        assert by_app["irc"].footprint("cpu") == 1.5
        assert by_app["dns"].footprint("cpu") == 0.2

    def test_port_classifier_map(self):
        mapping = port_classifier_map(DEFAULT_APPLICATION_MIX)
        assert mapping[80] == "http"
        assert mapping[6667] == "irc"

    def test_lp_solves_with_application_classes(self, line_topology):
        """The formulations are class-granularity agnostic: per-app
        classes slot in directly (Section 3's general model)."""
        matrix = gravity_traffic_matrix(line_topology, 1000.0)
        classes = classes_with_applications(line_topology, matrix)
        state = NetworkState.calibrated(line_topology, classes,
                                        dc_capacity_factor=5.0)
        result = ReplicationProblem(
            state, mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=0.4).solve()
        assert result.load_cost <= 1.0
        for cls in classes:
            covered = (sum(result.process_fractions[cls.name].values())
                       + result.replicated_fraction(cls.name))
            assert covered == pytest.approx(1.0, abs=1e-6)

    def test_heavier_apps_dominate_calibration(self, line_topology):
        """HTTP (45% share, 1.2 cpu) drives more provisioning demand
        than DNS (10% share, 0.2 cpu)."""
        matrix = TrafficMatrix({("A", "D"): 1000.0})
        classes = classes_with_applications(line_topology, matrix)
        state = NetworkState.calibrated(line_topology, classes)
        http = state.class_by_name("A->D/http")
        dns = state.class_by_name("A->D/dns")
        http_work = http.footprint("cpu") * http.num_sessions
        dns_work = dns.footprint("cpu") * dns.num_sessions
        assert http_work > 20 * dns_work
