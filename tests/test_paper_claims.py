"""Capstone: the paper's Section 8.5 "Summary of key results" as tests.

Each test asserts one bullet of the summary on a fast configuration.
The full-scale magnitudes (10x+, 2.7x, ...) are asserted by the
benchmark harness; here we pin the *claims' directions and rough
magnitudes* so a regression anywhere in the pipeline trips quickly.
"""

import numpy as np
import pytest

from repro.core import (
    AggregationProblem,
    MirrorPolicy,
    NetworkState,
    ReplicationProblem,
    SplitTrafficProblem,
    ingress_result,
    ingress_split_result,
)
from repro.experiments.common import asymmetric_classes, setup_topology
from repro.topology import AsymmetricRoutingModel


@pytest.fixture(scope="module")
def tinet():
    """The smallest synthetic ISP — big enough to show the large-
    topology behavior, small enough for quick solves."""
    return setup_topology("tinet", dc_capacity_factor=10.0)


class TestSummaryOfKeyResults:
    def test_optimization_imposes_low_overhead(self, tinet):
        """'The optimization step and shim impose low overhead.'"""
        result = ReplicationProblem(
            tinet.state, mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=0.4).solve()
        assert result.stats.solve_seconds < 10.0

    def test_choices_need_not_be_optimal(self, tinet):
        """'Administrators need not worry about optimal choice of data
        center location, capacity, or the maximum link load' — a range
        of sensible knobs all land within ~2x of the best."""
        loads = []
        for max_link_load in (0.3, 0.4, 0.5):
            result = ReplicationProblem(
                tinet.state, mirror_policy=MirrorPolicy.datacenter(),
                max_link_load=max_link_load).solve()
            loads.append(result.load_cost)
        assert max(loads) < 2.0 * min(loads)

    def test_replication_reduces_max_load_severalfold(self, tinet):
        """'Replication reduced the maximum compute load by up to 10x
        when we add a NIDS cluster' — on TiNet the quick-scale gain is
        already >5x (the full 10x+ shows on Level3/NTT in the bench)."""
        ingress = ingress_result(tinet.state)
        replicated = ReplicationProblem(
            tinet.state, mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=0.4).solve()
        assert ingress.load_cost / replicated.load_cost > 5.0

    def test_one_hop_offload_helps_without_cluster(self):
        """'...or up to 5x with one-hop offload' (direction: one-hop
        beats pure on-path without any new hardware)."""
        setup = setup_topology("geant")
        plain = ReplicationProblem(
            setup.state, mirror_policy=MirrorPolicy.none()).solve()
        one_hop = ReplicationProblem(
            setup.state, mirror_policy=MirrorPolicy.neighbors(1),
            max_link_load=0.4).solve()
        assert plain.load_cost / one_hop.load_cost > 1.4

    def test_replication_robust_to_traffic_dynamics(self, tinet):
        """'In the presence of traffic dynamics, replication provided
        up to an order of magnitude reduction in maximum load.'"""
        rng = np.random.default_rng(0)
        burst = [cls.scaled(float(rng.uniform(0.3, 2.5)))
                 for cls in tinet.classes]
        state = tinet.state.with_traffic(burst)
        ingress = ingress_result(state)
        replicated = ReplicationProblem(
            state, mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=0.4).solve()
        assert ingress.load_cost / replicated.load_cost > 4.0

    def test_replication_fixes_asymmetric_miss_rate(self):
        """'Replication reduced the detection miss rate from 90% to
        zero in the presence of partially overlapping routes.'"""
        setup = setup_topology("internet2")
        model = AsymmetricRoutingModel(setup.topology, setup.routing)
        classes = asymmetric_classes(setup, model, 0.15,
                                     np.random.default_rng(7))
        state = NetworkState.calibrated(setup.topology, classes,
                                        dc_capacity_factor=10.0)
        ingress = ingress_split_result(state)
        replicated = SplitTrafficProblem(state,
                                         max_link_load=0.4).solve()
        assert ingress.miss_rate > 0.5
        assert replicated.miss_rate < 0.01

    def test_aggregation_reduces_imbalance(self, tinet):
        """'Aggregation reduced the load imbalance by up to 2.7x.'"""
        no_dc = setup_topology("tinet")
        baseline = ingress_result(no_dc.state)
        beta = AggregationProblem(no_dc.state).suggested_beta()
        aggregated = AggregationProblem(no_dc.state, beta=beta).solve()
        improvement = (baseline.load_imbalance() /
                       aggregated.load_imbalance())
        assert improvement > 2.0
