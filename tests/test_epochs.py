"""Tests for epoch-based scan detection (Section 6's measurement
epochs)."""

import pytest

from repro.core import AggregationProblem
from repro.shim import build_aggregation_configs
from repro.simulation import Emulation, Session, TraceGenerator
from repro.simulation.tracegen import TraceSpec
from repro.shim.hashing import FiveTuple
from repro.simulation.packets import pop_prefix_ip


@pytest.fixture
def scan_emulation(line_state):
    lp = AggregationProblem(line_state, beta=0.0).solve()
    configs = build_aggregation_configs(line_state, lp)
    generator = TraceGenerator(line_state.topology.nodes,
                               line_state.classes,
                               spec=TraceSpec(total_sessions=10),
                               seed=1)
    return Emulation(line_state, configs, generator.classifier)


def scanner_sessions(cls, scanner_host, dst_hosts, pop_index_src,
                     pop_index_dst):
    sessions = []
    for dst_host in dst_hosts:
        tup = FiveTuple(6, pop_prefix_ip(pop_index_src, scanner_host),
                        40000, pop_prefix_ip(pop_index_dst, dst_host),
                        80)
        sessions.append(Session(tup, cls.name, cls.path))
    return sessions


class TestEpochs:
    def test_counters_reset_between_epochs(self, scan_emulation,
                                           line_state):
        """A slow scanner spreading probes across epochs evades the
        per-epoch threshold; the same probes in one epoch are flagged.
        This is exactly the 'previous measurement epoch' semantics."""
        cls = line_state.class_by_name("A->D")
        pops = line_state.topology.nodes
        src_i, dst_i = pops.index("A"), pops.index("D")

        probes = scanner_sessions(cls, scanner_host=777,
                                  dst_hosts=range(100, 112),
                                  pop_index_src=src_i,
                                  pop_index_dst=dst_i)
        threshold = 9

        # Burst: all 12 probes in one epoch -> flagged.
        burst = scan_emulation.run_scan_epochs([probes], threshold)
        assert any(alerts for report in burst
                   for alerts in report.distributed_alerts.values())

        # Slow: 4 probes per epoch over 3 epochs -> never flagged.
        slow = scan_emulation.run_scan_epochs(
            [probes[0:4], probes[4:8], probes[8:12]], threshold)
        for report in slow:
            for alerts in report.distributed_alerts.values():
                assert alerts == ()

    def test_each_epoch_semantically_equivalent(self, scan_emulation,
                                                line_state):
        cls = line_state.class_by_name("A->D")
        pops = line_state.topology.nodes
        src_i, dst_i = pops.index("A"), pops.index("D")
        epochs = [
            scanner_sessions(cls, 700 + e, range(100, 120),
                             src_i, dst_i)
            for e in range(3)
        ]
        reports = scan_emulation.run_scan_epochs(epochs, threshold=5)
        assert len(reports) == 3
        for report in reports:
            assert report.semantically_equivalent

    def test_empty_epoch(self, scan_emulation):
        reports = scan_emulation.run_scan_epochs([[]], threshold=1)
        assert reports[0].distributed_alerts == {}
        assert reports[0].record_hops == 0.0
