"""Unit tests for the routing-asymmetry synthesis (Section 8.3)."""

import numpy as np
import pytest

from repro.topology import (
    AsymmetricRoutingModel,
    builtin_topology,
    jaccard_overlap,
    shortest_path_routing,
)


class TestJaccard:
    def test_identical(self):
        assert jaccard_overlap(("A", "B"), ("B", "A")) == 1.0

    def test_disjoint(self):
        assert jaccard_overlap(("A", "B"), ("C", "D")) == 0.0

    def test_partial(self):
        # {A,B,C} vs {B,C,D}: 2 shared / 4 union.
        assert jaccard_overlap(("A", "B", "C"),
                               ("B", "C", "D")) == pytest.approx(0.5)

    def test_empty_paths(self):
        assert jaccard_overlap((), ()) == 1.0

    def test_symmetric(self):
        a, b = ("A", "B", "C"), ("C", "D")
        assert jaccard_overlap(a, b) == jaccard_overlap(b, a)


@pytest.fixture(scope="module")
def internet2_model():
    topo = builtin_topology("internet2")
    routing = shortest_path_routing(topo)
    return AsymmetricRoutingModel(topo, routing)


class TestAsymmetricRoutingModel:
    def test_candidate_pool_is_unordered_pairs(self, internet2_model):
        # 11 PoPs -> 55 unordered pairs, minus any duplicate node-paths.
        assert 40 <= internet2_model.num_candidates <= 55

    def test_generate_one_route_per_pair(self, internet2_model):
        rng = np.random.default_rng(0)
        routes = internet2_model.generate(0.5, rng)
        assert len(routes) == 55
        assert all(r.source < r.target for r in routes)

    def test_forward_paths_are_shortest(self, internet2_model):
        rng = np.random.default_rng(0)
        for route in internet2_model.generate(0.5, rng):
            assert route.fwd_path[0] == route.source
            assert route.fwd_path[-1] == route.target

    def test_overlap_tracks_theta(self, internet2_model):
        rng = np.random.default_rng(1)
        low = internet2_model.mean_overlap(
            internet2_model.generate(0.1, rng))
        high = internet2_model.mean_overlap(
            internet2_model.generate(0.9, rng))
        assert low < high
        assert low < 0.4
        assert high > 0.6

    def test_theta_validation(self, internet2_model):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            internet2_model.generate(1.5, rng)

    def test_theta_one_yields_identical_paths(self, internet2_model):
        rng = np.random.default_rng(2)
        routes = internet2_model.generate(1.0, rng)
        # With target 1.0 most picked reverse paths share the node set.
        mean = internet2_model.mean_overlap(routes)
        assert mean > 0.9

    def test_exclude_identical(self, internet2_model):
        rng = np.random.default_rng(3)
        routes = internet2_model.generate(0.9, rng,
                                          exclude_identical=True)
        for route in routes:
            assert set(route.rev_path) != set(route.fwd_path)

    def test_common_nodes_in_forward_order(self, internet2_model):
        rng = np.random.default_rng(4)
        for route in internet2_model.generate(0.4, rng):
            common = route.common_nodes
            assert set(common) == set(route.fwd_path) & set(route.rev_path)
            indices = [route.fwd_path.index(n) for n in common]
            assert indices == sorted(indices)

    def test_deterministic_given_rng(self, internet2_model):
        a = internet2_model.generate(0.3, np.random.default_rng(7))
        b = internet2_model.generate(0.3, np.random.default_rng(7))
        assert a == b

    def test_max_candidates_subsampling(self):
        topo = builtin_topology("internet2")
        routing = shortest_path_routing(topo)
        model = AsymmetricRoutingModel(topo, routing,
                                       max_candidates=10, seed=1)
        assert model.num_candidates == 10

    def test_reverse_path_for_exact_target(self, internet2_model):
        fwd = internet2_model._candidates[0]
        rev = internet2_model.reverse_path_for(fwd, 1.0)
        assert set(rev) == set(fwd)
