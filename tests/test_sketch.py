"""Unit tests for the count-min sketch and the class-volume layer."""

import numpy as np
import pytest

from repro.sketch import (
    ClassVolumeSketch,
    CountMinSketch,
    SketchMismatchError,
)
from repro.traffic.matrix import EstimatedTrafficMatrix


class TestCountMin:
    def test_small_universe_is_exact(self):
        # Far fewer keys than counters: the min over rows recovers
        # every count exactly.
        sketch = CountMinSketch(256, 4, seed=1)
        keys = np.arange(10, dtype=np.uint32)
        counts = np.arange(1, 11, dtype=np.int64)
        sketch.update(keys, counts)
        assert np.array_equal(sketch.estimate(keys), counts)
        assert sketch.total == int(counts.sum())

    def test_estimates_are_one_sided(self):
        # Even under heavy collision pressure (universe >> width),
        # count-min never underestimates.
        sketch = CountMinSketch(8, 2, seed=3)
        rng = np.random.default_rng(5)
        keys = rng.integers(0, 2**32, size=500, dtype=np.uint32)
        sketch.update(keys)
        uniq, true_counts = np.unique(keys, return_counts=True)
        assert np.all(sketch.estimate(uniq) >= true_counts)

    def test_unit_counts_default(self):
        sketch = CountMinSketch(64, 3, seed=0)
        keys = np.array([7, 7, 9], dtype=np.uint32)
        sketch.update(keys)
        assert sketch.estimate(
            np.array([7], dtype=np.uint32))[0] == 2
        assert sketch.total == 3

    def test_negative_counts_rejected(self):
        sketch = CountMinSketch(64, 3, seed=0)
        with pytest.raises(ValueError):
            sketch.update(np.array([1], dtype=np.uint32),
                          np.array([-1]))

    def test_empty_update_is_noop(self):
        sketch = CountMinSketch(64, 3, seed=0)
        sketch.update(np.zeros(0, dtype=np.uint32))
        assert sketch.total == 0
        assert not sketch.table.any()

    def test_merge_is_lossless(self):
        # merged(a, b) must be bit-exactly the sketch of the
        # concatenated stream — the OctoSketch invariant.
        rng = np.random.default_rng(11)
        left = rng.integers(0, 1000, size=300, dtype=np.uint32)
        right = rng.integers(0, 1000, size=400, dtype=np.uint32)
        a = CountMinSketch(128, 4, seed=9)
        b = CountMinSketch(128, 4, seed=9)
        whole = CountMinSketch(128, 4, seed=9)
        a.update(left)
        b.update(right)
        whole.update(np.concatenate([left, right]))
        merged = a.copy().merge(b)
        assert np.array_equal(merged.table, whole.table)
        assert merged.total == whole.total

    @pytest.mark.parametrize("other", [
        dict(width=64, depth=4, seed=9),
        dict(width=128, depth=3, seed=9),
        dict(width=128, depth=4, seed=10),
    ])
    def test_merge_mismatch_raises(self, other):
        base = CountMinSketch(128, 4, seed=9)
        with pytest.raises(SketchMismatchError):
            base.merge(CountMinSketch(other["width"], other["depth"],
                                      seed=other["seed"]))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            CountMinSketch(0, 4, seed=1)
        with pytest.raises(ValueError):
            CountMinSketch(16, 0, seed=1)

    def test_seed_is_keyword_only(self):
        with pytest.raises(TypeError):
            CountMinSketch(16, 4, 1)  # noqa — the contract under test

    def test_state_accounting(self):
        sketch = CountMinSketch(1024, 4, seed=2)
        assert sketch.state_bytes == 1024 * 4 * 8
        assert sketch.epsilon == pytest.approx(np.e / 1024)
        assert sketch.delta == pytest.approx(np.exp(-4))
        sketch.update(np.array([1], dtype=np.uint32),
                      np.array([100]))
        assert sketch.error_bound() == pytest.approx(
            sketch.epsilon * 100)

    def test_reset_clears_window(self):
        sketch = CountMinSketch(64, 2, seed=4)
        sketch.update(np.array([5, 6], dtype=np.uint32))
        sketch.reset()
        assert sketch.total == 0
        assert not sketch.table.any()

    def test_multi_column_keys(self):
        sketch = CountMinSketch(256, 4, seed=8)
        cols = [np.array([1, 2], dtype=np.uint32),
                np.array([3, 4], dtype=np.uint32)]
        sketch.update(cols, np.array([10, 20]))
        assert np.array_equal(sketch.estimate(cols), [10, 20])


class TestClassVolumeSketch:
    def make(self, **kwargs):
        kwargs.setdefault("width", 256)
        kwargs.setdefault("depth", 4)
        kwargs.setdefault("seed", 7)
        return ClassVolumeSketch(["a->b", "b->a", "a->c"], **kwargs)

    def test_observe_classes_and_volumes(self):
        sketch = self.make()
        sketch.observe_classes(["a->b", "a->c"], [120.0, 30.0])
        assert sketch.class_volume("a->b") == 120
        assert sketch.class_volume("a->c") == 30
        assert sketch.class_volume("b->a") == 0
        assert sketch.sessions == 150

    def test_unknown_class_rejected(self):
        sketch = self.make()
        with pytest.raises(ValueError):
            sketch.observe_classes(["nope"], [1.0])

    def test_duplicate_universe_rejected(self):
        with pytest.raises(ValueError):
            ClassVolumeSketch(["x", "x"], seed=1)

    def test_merge_matches_single_worker(self):
        a = self.make()
        b = self.make()
        whole = self.make()
        a.observe_classes(["a->b"], [10.0])
        b.observe_classes(["a->b", "b->a"], [5.0, 7.0])
        whole.observe_classes(["a->b", "a->b", "b->a"],
                              [10.0, 5.0, 7.0])
        a.merge(b)
        assert np.array_equal(a.class_volumes(),
                              whole.class_volumes())
        assert a.sessions == whole.sessions
        assert a.merges == 1

    def test_merge_requires_same_universe(self):
        a = self.make()
        b = ClassVolumeSketch(["other"], width=256, depth=4, seed=7)
        with pytest.raises(SketchMismatchError):
            a.merge(b)

    def test_estimate_errors(self):
        sketch = self.make()
        sketch.observe_classes(["a->b"], [100.0])
        errors = sketch.estimate_errors(
            {"a->b": 90.0, "b->a": 0.0})
        assert errors["l1"] == pytest.approx(10.0)
        assert errors["linf"] == pytest.approx(10.0)
        assert errors["l1_rel"] == pytest.approx(10.0 / 90.0)

    def test_state_bytes_covers_both_tables(self):
        sketch = self.make(source_width=512)
        assert sketch.state_bytes == (256 * 4 * 8) + (512 * 4 * 8)


class TestEstimatedMatrix:
    def test_estimated_classes_and_matrix(self, line_state_dc):
        classes = list(line_state_dc.classes)
        sketch = ClassVolumeSketch([cls.name for cls in classes],
                                   width=256, depth=4, seed=3)
        sketch.observe_classes([classes[0].name], [50.0])
        estimated = sketch.estimated_classes(classes, scale=2.0)
        assert estimated[0].num_sessions == pytest.approx(100.0)
        # Structure is untouched — only volumes are estimated.
        assert estimated[0].source == classes[0].source
        assert estimated[0].target == classes[0].target

        matrix = sketch.estimated_matrix(classes, scale=2.0)
        assert isinstance(matrix, EstimatedTrafficMatrix)
        first = classes[0]
        assert matrix.volume(first.source,
                             first.target) == pytest.approx(100.0)
        assert matrix.epsilon == pytest.approx(np.e / 256)
        assert matrix.state_bytes == sketch.state_bytes
        assert matrix.error_bound() == pytest.approx(
            matrix.epsilon * 50 * 2.0)

    def test_matrix_validation(self):
        with pytest.raises(ValueError):
            EstimatedTrafficMatrix({}, epsilon=-1.0, delta=0.5,
                                   state_bytes=0)
        with pytest.raises(ValueError):
            EstimatedTrafficMatrix({}, epsilon=0.1, delta=1.5,
                                   state_bytes=0)
