"""Unit tests for the Section 4 replication LP (Figure 7)."""

import pytest

from repro.core import MirrorPolicy, NetworkState, ReplicationProblem


@pytest.fixture
def no_replicate_result(line_state):
    return ReplicationProblem(
        line_state, mirror_policy=MirrorPolicy.none()).solve()


@pytest.fixture
def dc_result(line_state_dc):
    return ReplicationProblem(
        line_state_dc, mirror_policy=MirrorPolicy.datacenter(),
        max_link_load=0.4).solve()


class TestOnPathDistribution:
    def test_optimal_balance_on_line(self, no_replicate_result):
        # Work: A->D (1000) splittable over A,B,C,D; B->C (500) over
        # B,C. Perfect balance: 1500/4 = 375 per node; cap is 1000.
        assert no_replicate_result.load_cost == pytest.approx(0.375,
                                                              abs=1e-6)

    def test_coverage_sums_to_one(self, no_replicate_result, line_state):
        for cls in line_state.classes:
            total = sum(
                no_replicate_result.process_fractions[cls.name].values())
            assert total == pytest.approx(1.0, abs=1e-6)

    def test_fractions_within_bounds(self, no_replicate_result):
        for fractions in no_replicate_result.process_fractions.values():
            for value in fractions.values():
                assert -1e-9 <= value <= 1 + 1e-9

    def test_only_on_path_nodes_process(self, no_replicate_result,
                                        line_state):
        for cls in line_state.classes:
            fractions = no_replicate_result.process_fractions[cls.name]
            assert set(fractions) == set(cls.path)

    def test_no_offloads_under_none_policy(self, no_replicate_result):
        assert no_replicate_result.offload_fractions == {}

    def test_beats_ingress_only(self, no_replicate_result, line_state):
        ingress_max = max(line_state.ingress_load().values())
        assert no_replicate_result.load_cost < ingress_max


class TestReplication:
    def test_coverage_includes_offloads(self, dc_result, line_state_dc):
        for cls in line_state_dc.classes:
            local = sum(dc_result.process_fractions[cls.name].values())
            offloaded = dc_result.replicated_fraction(cls.name)
            assert local + offloaded == pytest.approx(1.0, abs=1e-6)

    def test_replication_reduces_max_load(self, dc_result,
                                          no_replicate_result):
        assert dc_result.load_cost < no_replicate_result.load_cost

    def test_link_loads_respect_bound(self, dc_result, line_state_dc):
        for link, load in dc_result.link_loads.items():
            bound = max(0.4, line_state_dc.bg_load(link))
            assert load <= bound + 1e-6

    def test_node_loads_below_load_cost(self, dc_result):
        for loads in dc_result.node_loads.values():
            for load in loads.values():
                assert load <= dc_result.load_cost + 1e-6

    def test_load_cost_attained(self, dc_result):
        top = max(max(loads.values())
                  for loads in dc_result.node_loads.values())
        assert top == pytest.approx(dc_result.load_cost, abs=1e-6)

    def test_zero_link_budget_disables_replication(self, line_state_dc,
                                                   line_state):
        strangled = ReplicationProblem(
            line_state_dc, mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=0.0).solve()
        plain = ReplicationProblem(
            line_state, mirror_policy=MirrorPolicy.none()).solve()
        # With zero budget the DC is unreachable except over links that
        # already exceed the bound via background (none here can carry
        # *new* traffic), so the result matches pure on-path.
        assert strangled.load_cost == pytest.approx(plain.load_cost,
                                                    abs=1e-6)

    def test_monotone_in_link_budget(self, line_state_dc):
        costs = []
        for limit in (0.0, 0.2, 0.4, 0.8):
            result = ReplicationProblem(
                line_state_dc, mirror_policy=MirrorPolicy.datacenter(),
                max_link_load=limit).solve()
            costs.append(result.load_cost)
        assert costs == sorted(costs, reverse=True)

    def test_monotone_in_dc_capacity(self, line_topology, line_classes):
        costs = []
        for factor in (1.0, 4.0, 10.0):
            state = NetworkState.calibrated(
                line_topology, line_classes, dc_capacity_factor=factor)
            result = ReplicationProblem(
                state, mirror_policy=MirrorPolicy.datacenter(),
                max_link_load=1.0).solve()
            costs.append(result.load_cost)
        assert costs[0] >= costs[1] >= costs[2]

    def test_stats_populated(self, dc_result):
        assert dc_result.stats.num_variables > 0
        assert dc_result.stats.num_constraints > 0
        assert dc_result.stats.solve_seconds >= 0.0


class TestLocalOffload:
    def test_one_hop_improves_on_path_only(self, line_state):
        plain = ReplicationProblem(
            line_state, mirror_policy=MirrorPolicy.none()).solve()
        one_hop = ReplicationProblem(
            line_state, mirror_policy=MirrorPolicy.neighbors(1),
            max_link_load=0.4).solve()
        assert one_hop.load_cost <= plain.load_cost + 1e-9

    def test_offloads_target_mirror_set_only(self, line_state):
        policy = MirrorPolicy.neighbors(1)
        result = ReplicationProblem(
            line_state, mirror_policy=policy,
            max_link_load=0.4).solve()
        sets = policy.mirror_sets(line_state)
        for cls_name, offloads in result.offload_fractions.items():
            for (node, mirror) in offloads:
                assert mirror in sets[node]

    def test_no_offload_to_on_path_mirror(self, line_state_dc):
        # Mirrors already on a class's path must not receive offloads.
        result = ReplicationProblem(
            line_state_dc, mirror_policy=MirrorPolicy.all_nodes(),
            max_link_load=0.4).solve()
        for cls in line_state_dc.classes:
            for (node, mirror) in result.offload_fractions.get(
                    cls.name, {}):
                assert mirror not in cls.path


class TestWeightedLoadObjective:
    def test_uniform_weights_minimize_total_work_cost(self, line_state):
        """With uniform weights the objective is the (capacity-
        normalized) total work, which is constant across feasible
        assignments on identical nodes — the LP reports that total."""
        weights = {("cpu", node): 1.0 for node in line_state.nids_nodes}
        result = ReplicationProblem(
            line_state, mirror_policy=MirrorPolicy.none(),
            load_weights=weights).solve()
        total = sum(result.node_loads["cpu"].values())
        assert result.load_cost == pytest.approx(total, abs=1e-6)

    def test_single_node_weight_drains_that_node(self, line_state):
        """Putting all weight on node B makes the LP route every bit
        of splittable work away from B."""
        weights = {("cpu", "B"): 1.0}
        result = ReplicationProblem(
            line_state, mirror_policy=MirrorPolicy.none(),
            load_weights=weights).solve()
        assert result.node_loads["cpu"]["B"] == pytest.approx(0.0,
                                                              abs=1e-6)

    def test_weighted_objective_reported_as_load_cost(self, line_state):
        weights = {("cpu", "A"): 2.0, ("cpu", "B"): 1.0}
        result = ReplicationProblem(
            line_state, mirror_policy=MirrorPolicy.none(),
            load_weights=weights).solve()
        expected = (2.0 * result.node_loads["cpu"]["A"] +
                    1.0 * result.node_loads["cpu"]["B"])
        assert result.load_cost == pytest.approx(expected, abs=1e-6)


class TestValidation:
    def test_bad_link_load_rejected(self, line_state):
        with pytest.raises(ValueError):
            ReplicationProblem(line_state, max_link_load=1.5)
