"""Edge cases for emulation/LP share metrics: empty and degenerate
reports must uniformly yield all-zeros, never raise."""

import math

import pytest

from repro.core.inputs import NetworkState
from repro.core.results import AssignmentResult, LPStats
from repro.simulation.emulation import EmulationReport
from repro.simulation.metrics import (
    peak_to_mean,
    predicted_work_shares,
    share_divergence,
    share_rms,
    work_shares,
)
from repro.topology.topology import Topology
from repro.traffic.classes import TrafficClass


def _report(work):
    return EmulationReport(
        work_units=work, sessions_processed={}, alerts=0,
        replicated_bytes=0.0, link_replicated_bytes={},
        packets_total=0)


def _stats():
    return LPStats(num_variables=0, num_constraints=0,
                   solve_seconds=0.0, iterations=0)


@pytest.fixture
def tiny_state():
    topology = Topology("pair", ["A", "B"], [("A", "B")],
                        populations={"A": 1.0, "B": 1.0})
    from repro.topology.routing import shortest_path_routing

    routing = shortest_path_routing(topology)
    cls = TrafficClass(name="A->B", source="A", target="B",
                       path=routing.path("A", "B"),
                       num_sessions=10.0, session_bytes=100.0)
    return NetworkState.calibrated(topology, [cls])


class TestWorkShares:
    def test_empty_report(self):
        assert work_shares(_report({})) == {}

    def test_all_zero_work(self):
        shares = work_shares(_report({"A": 0.0, "B": 0.0}))
        assert shares == {"A": 0.0, "B": 0.0}

    def test_nan_total_degrades_to_zeros(self):
        shares = work_shares(_report({"A": float("nan"), "B": 1.0}))
        assert shares == {"A": 0.0, "B": 0.0}

    def test_plain_mapping_accepted(self):
        shares = work_shares({"A": 3.0, "B": 1.0})
        assert shares == {"A": 0.75, "B": 0.25}

    def test_normal_report_unchanged(self):
        shares = work_shares(_report({"A": 2.0, "B": 2.0}))
        assert shares == {"A": 0.5, "B": 0.5}


class TestPredictedWorkShares:
    def test_zero_loads_give_all_zeros(self, tiny_state):
        result = AssignmentResult(
            load_cost=0.0,
            node_loads={"cpu": {n: 0.0
                                for n in tiny_state.nids_nodes}},
            process_fractions={}, stats=_stats())
        shares = predicted_work_shares(tiny_state, result)
        assert shares == {n: 0.0 for n in tiny_state.nids_nodes}

    def test_missing_resource_gives_all_zeros(self, tiny_state):
        result = AssignmentResult(
            load_cost=0.0, node_loads={},
            process_fractions={}, stats=_stats())
        shares = predicted_work_shares(tiny_state, result,
                                       resource="memory")
        assert shares == {n: 0.0 for n in tiny_state.nids_nodes}

    def test_missing_node_counts_as_zero(self, tiny_state):
        result = AssignmentResult(
            load_cost=0.5, node_loads={"cpu": {"A": 0.5}},
            process_fractions={}, stats=_stats())
        shares = predicted_work_shares(tiny_state, result)
        assert shares["A"] == 1.0
        assert shares["B"] == 0.0

    def test_shares_sum_to_one_when_nonzero(self, tiny_state):
        result = AssignmentResult(
            load_cost=0.5,
            node_loads={"cpu": {"A": 0.5, "B": 0.25}},
            process_fractions={}, stats=_stats())
        shares = predicted_work_shares(tiny_state, result)
        assert sum(shares.values()) == pytest.approx(1.0)


class TestShareComparators:
    def test_divergence_of_empty(self):
        assert share_divergence({}, {}) == 0.0

    def test_rms_of_empty(self):
        assert share_rms({}, {}) == 0.0

    def test_rms_identical_is_zero(self):
        shares = {"A": 0.6, "B": 0.4}
        assert share_rms(shares, dict(shares)) == 0.0

    def test_rms_known_value(self):
        assert share_rms({"A": 1.0, "B": 0.0},
                         {"A": 0.0, "B": 1.0}) == pytest.approx(1.0)

    def test_rms_missing_nodes_count_as_zero(self):
        assert share_rms({"A": 0.5}, {"B": 0.5}) == pytest.approx(0.5)

    def test_peak_to_mean_empty_is_nan(self):
        assert math.isnan(peak_to_mean({}))
        assert math.isnan(peak_to_mean({"A": 0.0}))
