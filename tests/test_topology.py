"""Unit tests for the Topology abstraction."""

import pytest

from repro.topology import Topology, builtin_topology


class TestConstruction:
    def test_duplicate_nodes_rejected(self):
        with pytest.raises(ValueError):
            Topology("t", ["A", "A"], [])

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Topology("t", ["A", "B"], [("A", "A")])

    def test_unknown_link_endpoint_rejected(self):
        with pytest.raises(ValueError):
            Topology("t", ["A", "B"], [("A", "C")])

    def test_links_canonical_order(self):
        topo = Topology("t", ["B", "A"], [("B", "A")])
        assert topo.links == [("A", "B")]

    def test_duplicate_links_collapse(self):
        topo = Topology("t", ["A", "B"], [("A", "B"), ("B", "A")])
        assert topo.num_links == 1

    def test_default_populations(self):
        topo = Topology("t", ["A", "B"], [("A", "B")])
        assert topo.population("A") == 1.0


class TestPaths:
    def test_shortest_path_on_line(self, line_topology):
        assert line_topology.shortest_path("A", "D") == \
            ("A", "B", "C", "D")

    def test_shortest_path_same_node(self, line_topology):
        assert line_topology.shortest_path("B", "B") == ("B",)

    def test_deterministic_tie_break(self, diamond_topology):
        # A-B-D and A-C-D are both shortest; lexicographic pick is ABD.
        assert diamond_topology.shortest_path("A", "D") == ("A", "B", "D")

    def test_all_shortest_paths(self, diamond_topology):
        paths = diamond_topology.all_shortest_paths("A", "D")
        assert ("A", "B", "D") in paths
        assert ("A", "C", "D") in paths
        assert len(paths) == 2

    def test_hop_distance(self, line_topology):
        assert line_topology.hop_distance("A", "D") == 3
        assert line_topology.hop_distance("A", "A") == 0

    def test_nodes_within(self, line_topology):
        assert line_topology.nodes_within("B", 1) == ["A", "C"]
        assert line_topology.nodes_within("B", 2) == ["A", "C", "D"]

    def test_nodes_within_negative_raises(self, line_topology):
        with pytest.raises(ValueError):
            line_topology.nodes_within("B", -1)

    def test_path_links(self):
        links = Topology.path_links(("C", "B", "A"))
        assert links == [("B", "C"), ("A", "B")]

    def test_diameter(self, line_topology, diamond_topology):
        assert line_topology.diameter() == 3
        assert diamond_topology.diameter() == 2

    def test_mean_path_length(self, line_topology):
        # Chain of 4: distances 1,1,1 (adjacent), 2,2, 3 -> mean 10/6.
        assert line_topology.mean_path_length() == \
            pytest.approx(10.0 / 6.0)


class TestDerivedTopologies:
    def test_with_datacenter(self, line_topology):
        topo = line_topology.with_datacenter("B", "DC")
        assert "DC" in topo.nodes
        assert topo.has_link("B", "DC")
        assert topo.population("DC") == 0.0
        # Original unchanged.
        assert "DC" not in line_topology.nodes

    def test_with_datacenter_bad_anchor(self, line_topology):
        with pytest.raises(ValueError):
            line_topology.with_datacenter("Z")

    def test_with_datacenter_name_clash(self, line_topology):
        with pytest.raises(ValueError):
            line_topology.with_datacenter("B", "A")

    def test_datacenter_is_never_transit(self, line_topology):
        topo = line_topology.with_datacenter("B", "DC")
        # Shortest paths between original nodes avoid the stub DC.
        for source in line_topology.nodes:
            for target in line_topology.nodes:
                if source != target:
                    assert "DC" not in topo.shortest_path(source, target)

    def test_subgraph_without(self, line_topology):
        topo = line_topology.subgraph_without("D")
        assert topo.nodes == ["A", "B", "C"]
        assert topo.num_links == 2


class TestBuiltins:
    def test_internet2_shape(self):
        topo = builtin_topology("internet2")
        assert topo.num_nodes == 11
        assert topo.num_links == 14
        assert topo.is_connected()

    def test_geant_shape(self):
        topo = builtin_topology("geant")
        assert topo.num_nodes == 22
        assert topo.is_connected()

    @pytest.mark.parametrize("name,pops", [
        ("enterprise", 23), ("tinet", 41), ("telstra", 44),
        ("sprint", 52), ("level3", 63), ("ntt", 70)])
    def test_paper_pop_counts(self, name, pops):
        topo = builtin_topology(name)
        assert topo.num_nodes == pops
        assert topo.is_connected()

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            builtin_topology("arpanet")

    def test_case_insensitive(self):
        assert builtin_topology("Internet2").num_nodes == 11

    def test_builtins_deterministic(self):
        a = builtin_topology("sprint")
        b = builtin_topology("sprint")
        assert a.nodes == b.nodes
        assert a.links == b.links
        assert a.populations == b.populations
