"""Property-based tests on the system's core invariants."""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import assume, given, settings

from repro.core import MirrorPolicy, NetworkState, ReplicationProblem
from repro.nids import AhoCorasick
from repro.shim import (
    FiveTuple,
    canonical_five_tuple,
    compile_hash_ranges,
    session_hash,
)
from repro.topology.asymmetry import jaccard_overlap
from repro.topology.topology import Topology
from repro.traffic.classes import TrafficClass

ips = st.integers(min_value=0, max_value=2 ** 32 - 1)
ports = st.integers(min_value=0, max_value=2 ** 16 - 1)
five_tuples = st.builds(FiveTuple,
                        proto=st.sampled_from([6, 17]),
                        src_ip=ips, src_port=ports,
                        dst_ip=ips, dst_port=ports)


class TestHashProperties:
    @given(tup=five_tuples)
    def test_session_hash_direction_invariant(self, tup):
        assert session_hash(tup) == session_hash(tup.reversed())

    @given(tup=five_tuples)
    def test_canonicalization_idempotent(self, tup):
        canon = canonical_five_tuple(tup)
        assert canonical_five_tuple(canon) == canon

    @given(tup=five_tuples)
    def test_canonical_form_shared_by_both_directions(self, tup):
        assert (canonical_five_tuple(tup) ==
                canonical_five_tuple(tup.reversed()))

    @given(tup=five_tuples, seed=st.integers(0, 1000))
    def test_hash_in_unit_interval(self, tup, seed):
        assert 0.0 <= session_hash(tup, seed=seed) < 1.0


class TestRangeProperties:
    @st.composite
    def fraction_lists(draw):
        n = draw(st.integers(min_value=1, max_value=8))
        raw = draw(st.lists(st.floats(min_value=0.0, max_value=1.0),
                            min_size=n, max_size=n))
        total = sum(raw)
        assume(total > 0)
        return [(f"k{i}", value / total) for i, value in enumerate(raw)]

    @given(fractions=fraction_lists())
    def test_full_coverage_partition(self, fractions):
        """Normalized fractions compile to a partition of [0,1)."""
        ranges = compile_hash_ranges(fractions)
        for i in range(101):
            value = min(i / 100.0, 0.999999)
            owners = [r.key for r in ranges if r.contains(value)]
            assert len(owners) == 1

    @given(fractions=fraction_lists())
    def test_widths_match_fractions(self, fractions):
        ranges = compile_hash_ranges(fractions)
        by_key = {r.key: r.width for r in ranges}
        for key, fraction in fractions:
            if fraction > 1e-9:
                assert by_key[key] == pytest.approx(fraction, abs=1e-6)


class TestJaccardProperties:
    node_lists = st.lists(st.sampled_from("ABCDEFGH"), min_size=1,
                          max_size=6, unique=True)

    @given(a=node_lists, b=node_lists)
    def test_symmetric(self, a, b):
        assert jaccard_overlap(a, b) == jaccard_overlap(b, a)

    @given(a=node_lists)
    def test_identity(self, a):
        assert jaccard_overlap(a, a) == 1.0

    @given(a=node_lists, b=node_lists)
    def test_bounds(self, a, b):
        assert 0.0 <= jaccard_overlap(a, b) <= 1.0


class TestAhoCorasickProperties:
    @settings(max_examples=50, deadline=None)
    @given(payload=st.binary(min_size=0, max_size=200),
           patterns=st.lists(st.binary(min_size=1, max_size=5),
                             min_size=1, max_size=5, unique=True))
    def test_matches_naive_reference(self, payload, patterns):
        ac = AhoCorasick(patterns)
        expected = sum(payload.startswith(p, i)
                       for p in patterns for i in range(len(payload)))
        assert len(ac.search(payload)) == expected


class TestReplicationLPProperties:
    @st.composite
    def random_line_instances(draw):
        """A 4-node chain with 1-3 random classes."""
        topo = Topology("line", ["A", "B", "C", "D"],
                        [("A", "B"), ("B", "C"), ("C", "D")])
        n = draw(st.integers(1, 3))
        segments = [("A", "D", ("A", "B", "C", "D")),
                    ("B", "D", ("B", "C", "D")),
                    ("A", "C", ("A", "B", "C"))]
        classes = []
        for i in range(n):
            source, target, path = segments[i]
            volume = draw(st.floats(min_value=10.0, max_value=1e4))
            classes.append(TrafficClass(
                f"c{i}", source, target, path, volume,
                session_bytes=draw(st.floats(min_value=100.0,
                                             max_value=1e5))))
        return topo, classes

    @settings(max_examples=15, deadline=None)
    @given(instance=random_line_instances())
    def test_work_conservation(self, instance):
        """Total processed work equals total offered work: fractions
        sum to one per class and loads integrate them exactly."""
        topo, classes = instance
        state = NetworkState.calibrated(topo, classes,
                                        dc_capacity_factor=5.0)
        result = ReplicationProblem(
            state, mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=0.5).solve()
        total_offered = sum(c.footprint("cpu") * c.num_sessions
                            for c in classes)
        total_processed = sum(
            load * state.capacity("cpu", node)
            for node, load in result.node_loads["cpu"].items())
        assert total_processed == pytest.approx(total_offered,
                                                rel=1e-6)

    @settings(max_examples=15, deadline=None)
    @given(instance=random_line_instances())
    def test_never_worse_than_ingress(self, instance):
        topo, classes = instance
        state = NetworkState.calibrated(topo, classes)
        result = ReplicationProblem(
            state, mirror_policy=MirrorPolicy.none()).solve()
        assert result.load_cost <= 1.0 + 1e-6

    @settings(max_examples=10, deadline=None)
    @given(instance=random_line_instances(),
           budget=st.sampled_from([0.0, 0.3, 0.7]))
    def test_link_bounds_hold(self, instance, budget):
        topo, classes = instance
        state = NetworkState.calibrated(topo, classes,
                                        dc_capacity_factor=5.0)
        result = ReplicationProblem(
            state, mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=budget).solve()
        for link, load in result.link_loads.items():
            assert load <= max(budget, state.bg_load(link)) + 1e-6

    @settings(max_examples=10, deadline=None)
    @given(instance=random_line_instances(),
           budget=st.sampled_from([0.0, 0.4, 1.0]))
    def test_results_pass_independent_validation(self, instance,
                                                 budget):
        """Random instances validate clean through core.validation."""
        from repro.core import validate_replication

        topo, classes = instance
        state = NetworkState.calibrated(topo, classes,
                                        dc_capacity_factor=5.0)
        result = ReplicationProblem(
            state, mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=budget).solve()
        assert validate_replication(state, result) == []

    @settings(max_examples=10, deadline=None)
    @given(instance=random_line_instances())
    def test_aggregation_validates_on_random_instances(self, instance):
        from repro.core import AggregationProblem, validate_aggregation

        topo, classes = instance
        state = NetworkState.calibrated(topo, classes)
        problem = AggregationProblem(state)
        result = AggregationProblem(
            state, beta=problem.suggested_beta()).solve()
        assert validate_aggregation(state, result) == []

    @settings(max_examples=8, deadline=None)
    @given(theta=st.floats(min_value=0.05, max_value=0.95),
           seed=st.integers(0, 500))
    def test_split_validates_on_random_asymmetry(self, theta, seed):
        """Random asymmetric configurations on Internet2 produce split
        results that pass independent validation with ~zero misses."""
        import numpy as np

        from repro.core import SplitTrafficProblem, validate_split
        from repro.experiments.common import (asymmetric_classes,
                                              setup_topology)
        from repro.topology import AsymmetricRoutingModel

        setup = setup_topology("internet2")
        model = AsymmetricRoutingModel(setup.topology, setup.routing)
        classes = asymmetric_classes(setup, model, theta,
                                     np.random.default_rng(seed))
        state = NetworkState.calibrated(setup.topology, classes,
                                        dc_capacity_factor=10.0)
        result = SplitTrafficProblem(state, max_link_load=0.4).solve()
        assert validate_split(state, result) == []
        # At extreme asymmetry (theta < ~0.2) the link budget itself
        # can cap coverage (the Figure 16/17 low-overlap regime), so
        # only assert near-zero misses away from that edge.
        if theta >= 0.2:
            assert result.miss_rate < 0.05
