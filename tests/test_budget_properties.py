"""Property-based tests for the rule-budgeted lowering.

For arbitrary fraction vectors and budgets,
:func:`~repro.shim.budget.budgeted_hash_ranges` must emit at most
``budget`` ranges that tile [0, 1) exactly (contiguous, no overlap,
no gap), reproduce the unbudgeted compiler bit-for-bit when the
budget is absent or slack, and lose fidelity *monotonically* — a
bigger table is never worse. These are the invariants the TCAM
approximation (Sadeh/Rottenstreich/Kaplan) is allowed to rely on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.shim.budget import budgeted_hash_ranges
from repro.shim.ranges import compile_hash_ranges

EPS = 1e-9


def _entries_from_weights(weights):
    """Positive weights -> (key, fraction) pairs summing exactly to 1."""
    total = sum(weights)
    fractions = [w / total for w in weights]
    fractions[-1] = 1.0 - sum(fractions[:-1])
    return [(f"k{i}", fraction)
            for i, fraction in enumerate(fractions)]


weight_vectors = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    min_size=1, max_size=10,
).filter(lambda ws: sum(ws) > 0.01)

budgets = st.integers(min_value=1, max_value=12)


class TestBudgetedTiling:
    @settings(max_examples=120, deadline=None)
    @given(weights=weight_vectors, budget=budgets)
    def test_tiles_unit_interval_without_overlap(self, weights,
                                                 budget):
        """Budgeted ranges start at 0, are contiguous (no overlap, no
        gap), and the last one ends exactly at 1.0 — the approximation
        moves boundaries, never coverage."""
        entries = _entries_from_weights(weights)
        lowering = budgeted_hash_ranges(entries, budget)
        ranges = lowering.ranges
        assert ranges, "a unit-sum layout always emits ranges"
        assert ranges[0].start == 0.0
        for prev, cur in zip(ranges, ranges[1:]):
            assert cur.start == prev.end  # contiguous: no gap/overlap
        assert ranges[-1].end == 1.0
        for rng in ranges:
            assert rng.width > 0.0

    @settings(max_examples=120, deadline=None)
    @given(weights=weight_vectors, budget=budgets)
    def test_never_exceeds_budget(self, weights, budget):
        entries = _entries_from_weights(weights)
        lowering = budgeted_hash_ranges(entries, budget)
        assert lowering.num_rules <= budget
        assert set(lowering.dropped_keys).isdisjoint(
            rng.key for rng in lowering.ranges)

    @settings(max_examples=120, deadline=None)
    @given(weights=weight_vectors, budget=budgets)
    def test_realized_accounts_every_key(self, weights, budget):
        """`realized` covers every target key (dropped ones at 0) and
        its widths sum to the full unit of hash space."""
        entries = _entries_from_weights(weights)
        lowering = budgeted_hash_ranges(entries, budget)
        assert set(lowering.realized) == set(lowering.targets)
        assert sum(lowering.realized.values()) == pytest.approx(1.0)
        for key in lowering.dropped_keys:
            assert lowering.realized[key] == 0.0


class TestBudgetedFidelity:
    @settings(max_examples=120, deadline=None)
    @given(weights=weight_vectors, budget=budgets)
    def test_error_monotone_in_budget(self, weights, budget):
        """Growing the budget by one never increases either error
        norm (proportional redistribution: L1 = 2x dropped mass,
        Linf bounded by shrinking terms)."""
        entries = _entries_from_weights(weights)
        small = budgeted_hash_ranges(entries, budget)
        large = budgeted_hash_ranges(entries, budget + 1)
        assert large.error_l1 <= small.error_l1 + 1e-9
        assert large.error_linf <= small.error_linf + 1e-9

    @settings(max_examples=120, deadline=None)
    @given(weights=weight_vectors, budget=budgets)
    def test_l1_error_is_twice_dropped_mass(self, weights, budget):
        """The dropped mass re-lands on kept keys, so the L1 norm is
        exactly twice the dropped target mass (modulo the final
        snap-to-1.0 float correction)."""
        entries = _entries_from_weights(weights)
        lowering = budgeted_hash_ranges(entries, budget)
        dropped_mass = sum(lowering.targets[key]
                           for key in lowering.dropped_keys)
        assert lowering.error_l1 == pytest.approx(2.0 * dropped_mass,
                                                  abs=1e-6)

    @settings(max_examples=120, deadline=None)
    @given(weights=weight_vectors)
    def test_slack_budget_is_exact(self, weights):
        """A budget at least as large as the nonzero-fraction count
        realizes the targets exactly: zero error in both norms."""
        entries = _entries_from_weights(weights)
        nonzero = sum(1 for _, f in entries if f > EPS)
        lowering = budgeted_hash_ranges(entries, nonzero)
        assert lowering.error_l1 == pytest.approx(0.0, abs=1e-6)
        assert lowering.error_linf == pytest.approx(0.0, abs=1e-6)
        assert not lowering.dropped_keys


class TestUnbudgetedParity:
    @settings(max_examples=120, deadline=None)
    @given(weights=weight_vectors)
    def test_budget_none_matches_compile_hash_ranges(self, weights):
        """budget=None reproduces the unbudgeted compiler
        bit-for-bit — same keys, same float boundaries."""
        entries = _entries_from_weights(weights)
        lowering = budgeted_hash_ranges(entries, None)
        assert list(lowering.ranges) == compile_hash_ranges(entries)
        # epsilon-skipped slivers and the snap-to-1.0 of the last
        # range leave sub-1e-6 float dust, never real error
        assert lowering.error_l1 == pytest.approx(0.0, abs=1e-6)

    @settings(max_examples=120, deadline=None)
    @given(weights=weight_vectors, extra=st.integers(0, 5))
    def test_slack_budget_matches_compile_hash_ranges(self, weights,
                                                      extra):
        """Any budget >= the nonzero count is also bit-identical to
        the unbudgeted compile (the budgeted path is a strict
        superset, not a parallel implementation)."""
        entries = _entries_from_weights(weights)
        nonzero = sum(1 for _, f in entries if f > EPS)
        lowering = budgeted_hash_ranges(entries, nonzero + extra)
        assert list(lowering.ranges) == compile_hash_ranges(entries)

    @settings(max_examples=60, deadline=None)
    @given(weights=weight_vectors, budget=budgets,
           cut=st.floats(min_value=0.1, max_value=0.9))
    def test_partial_coverage_preserves_span(self, weights, budget,
                                             cut):
        """With require_full_coverage=False the budgeted ranges tile
        the same *prefix* span the fractions add up to."""
        entries = [(key, fraction * cut)
                   for key, fraction in _entries_from_weights(weights)]
        lowering = budgeted_hash_ranges(entries, budget,
                                        require_full_coverage=False)
        span = sum(rng.width for rng in lowering.ranges)
        target_span = sum(f for _, f in entries)
        # same sub-1e-6 dust bound as the budget=None parity test:
        # epsilon-skipped slivers can each be ~EPS wide
        assert span == pytest.approx(target_span, abs=1e-6)
        assert lowering.num_rules <= budget
        cursor = 0.0
        for rng in lowering.ranges:
            assert rng.start == pytest.approx(cursor, abs=1e-12)
            cursor = rng.end


class TestBudgetValidation:
    def test_zero_budget_rejected(self):
        with pytest.raises(ValueError, match="budget"):
            budgeted_hash_ranges([("a", 1.0)], 0)

    def test_negative_fraction_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            budgeted_hash_ranges([("a", -0.5), ("b", 1.5)], 2)

    def test_duplicate_key_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            budgeted_hash_ranges([("a", 0.5), ("a", 0.5)], 2)

    def test_deterministic_tie_break(self):
        """Equal fractions keep the earliest layout position, so the
        same inputs always compile to the same table."""
        entries = [("a", 0.25), ("b", 0.25), ("c", 0.25),
                   ("d", 0.25)]
        lowering = budgeted_hash_ranges(entries, 2)
        assert [rng.key for rng in lowering.ranges] == ["a", "b"]
        assert lowering.dropped_keys == ("c", "d")
