"""Tests for the independent result validators and LP duals."""

import pytest

from repro.core import (
    AggregationProblem,
    MirrorPolicy,
    ReplicationProblem,
    SplitTrafficProblem,
    validate_aggregation,
    validate_replication,
    validate_split,
)
from repro.lpsolve import Model


class TestValidators:
    def test_replication_result_valid(self, line_state_dc):
        result = ReplicationProblem(
            line_state_dc, mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=0.4).solve()
        assert validate_replication(line_state_dc, result) == []

    def test_on_path_result_valid(self, line_state):
        result = ReplicationProblem(
            line_state, mirror_policy=MirrorPolicy.none()).solve()
        assert validate_replication(line_state, result) == []

    def test_aggregation_result_valid(self, line_state):
        result = AggregationProblem(line_state, beta=1e-9).solve()
        assert validate_aggregation(line_state, result) == []

    def test_split_result_valid(self, line_state_dc):
        result = SplitTrafficProblem(line_state_dc,
                                     max_link_load=0.4).solve()
        assert validate_split(line_state_dc, result) == []

    def test_tampered_coverage_detected(self, line_state):
        result = ReplicationProblem(
            line_state, mirror_policy=MirrorPolicy.none()).solve()
        first = next(iter(result.process_fractions))
        node = next(iter(result.process_fractions[first]))
        result.process_fractions[first][node] += 0.5
        problems = validate_replication(line_state, result)
        assert any("coverage" in p for p in problems)

    def test_tampered_load_detected(self, line_state):
        result = ReplicationProblem(
            line_state, mirror_policy=MirrorPolicy.none()).solve()
        node = next(iter(result.node_loads["cpu"]))
        result.node_loads["cpu"][node] += 0.5
        problems = validate_replication(line_state, result)
        assert any("recomputed" in p for p in problems)

    def test_tampered_comm_cost_detected(self, line_state):
        result = AggregationProblem(line_state, beta=1e-9).solve()
        result.comm_cost *= 2.0
        problems = validate_aggregation(line_state, result)
        assert any("CommCost" in p for p in problems)

    def test_out_of_bounds_fraction_detected(self, line_state):
        result = ReplicationProblem(
            line_state, mirror_policy=MirrorPolicy.none()).solve()
        first = next(iter(result.process_fractions))
        node = next(iter(result.process_fractions[first]))
        result.process_fractions[first][node] = 1.7
        problems = validate_replication(line_state, result)
        assert any("out of [0, 1]" in p for p in problems)

    def test_inflated_coverage_detected_in_split(self, line_state_dc):
        result = SplitTrafficProblem(line_state_dc,
                                     max_link_load=0.4).solve()
        name = next(iter(result.coverage))
        result.coverage[name] = 2.0
        problems = validate_split(line_state_dc, result)
        assert any("exceeds" in p for p in problems)


class TestDuals:
    def test_binding_lower_bound(self):
        m = Model()
        x = m.add_variable("x")
        m.add_constraint(x >= 2, name="floor")
        m.minimize(x)
        sol = m.solve()
        assert sol.dual("floor") == pytest.approx(1.0)
        assert "floor" in sol.binding_constraints()

    def test_nonbinding_constraint_zero_dual(self):
        m = Model()
        x = m.add_variable("x", lb=0, ub=1)
        m.add_constraint(x <= 100, name="loose")
        m.minimize(x)
        sol = m.solve()
        assert sol.dual("loose") == pytest.approx(0.0, abs=1e-12)
        assert "loose" not in sol.binding_constraints()

    def test_maximization_dual_sign(self):
        # max 3a + 2b, a+b <= 4 binding with shadow price 3.
        m = Model()
        a = m.add_variable("a")
        b = m.add_variable("b")
        m.add_constraint(a + b <= 4, name="cap")
        m.add_constraint(a + 3 * b <= 6, name="slacky")
        m.maximize(3 * a + 2 * b)
        sol = m.solve()
        assert sol.dual("cap") == pytest.approx(3.0)

    def test_equality_dual(self):
        m = Model()
        x = m.add_variable("x")
        y = m.add_variable("y")
        m.add_constraint(x + y == 3, name="balance")
        m.minimize(2 * x + y)
        sol = m.solve()
        # Relaxing the equality by one unit costs one unit of y.
        assert sol.dual("balance") == pytest.approx(1.0)

    def test_link_budget_shadow_price(self, line_state_dc):
        """The MaxLinkLoad constraints that bind carry a negative
        shadow price (relaxing the cap lowers LoadCost)."""
        problem = ReplicationProblem(
            line_state_dc, mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=0.2)
        model = problem.build_model()
        solution = model.solve()
        link_duals = [solution.dual(con.name)
                      for con in model.constraints
                      if con.name.startswith("linkload")]
        assert any(d < -1e-9 for d in link_duals)
