"""Backend equivalence and incremental re-solve regression tests.

Both solver backends must agree (to LP tolerance) on a golden
replication instance, and ``Formulation.resolve`` after parameter
patches must reproduce a cold rebuild on every parameter path the
experiments exercise (Figures 11, 15, 18 and the controller loop).
"""

from dataclasses import replace

import pytest

from repro.core.aggregation import AggregationProblem
from repro.core.controller import NIDSController
from repro.core.mirrors import MirrorPolicy
from repro.core.replication import ReplicationProblem
from repro.lpsolve import (
    LPError,
    Model,
    SolverBackend,
    available_backends,
    default_backend_name,
    get_backend,
    resolve_backend,
    set_default_backend,
)

BACKENDS = ("scipy", "dense")


def _scaled(classes, factor):
    return [replace(cls, num_sessions=cls.num_sessions * factor)
            for cls in classes]


def _replication(state, backend=None, max_link_load=0.4):
    return ReplicationProblem(
        state, mirror_policy=MirrorPolicy.datacenter(),
        max_link_load=max_link_load, backend=backend)


class TestBackendEquivalence:
    """The dense fallback must match scipy/HiGHS on the golden
    replication instance (same optimum; both primal-feasible)."""

    def test_objectives_agree(self, line_state_dc):
        objectives = [
            _replication(line_state_dc, backend=name).solve().load_cost
            for name in BACKENDS]
        assert objectives[0] == pytest.approx(objectives[1], abs=1e-6)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_solution_is_primal_feasible(self, line_state_dc, name):
        model = _replication(line_state_dc, backend=name).build_model()
        values = model.solve().values()
        for con in model.constraints:
            assert con.violation(values) < 1e-7, con

    @pytest.mark.parametrize("name", BACKENDS)
    def test_small_lp_agrees_with_known_optimum(self, name):
        # max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> obj 12.
        m = Model(backend=name)
        x = m.add_variable("x")
        y = m.add_variable("y")
        m.add_constraint(x + y <= 4)
        m.add_constraint(x + 3 * y <= 6)
        m.maximize(3 * x + 2 * y)
        sol = m.solve()
        assert sol.objective_value == pytest.approx(12.0, abs=1e-6)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_resolve_after_patch_matches_cold_rebuild(
            self, line_state_dc, name):
        problem = _replication(line_state_dc, backend=name)
        problem.solve()
        warm = problem.resolve(max_link_load=0.1)
        cold = _replication(line_state_dc, backend=name,
                            max_link_load=0.1).solve()
        assert warm.load_cost == pytest.approx(cold.load_cost,
                                               abs=1e-6)


class TestResolveMatchesColdRebuild:
    """`resolve(**params)` must equal a from-scratch build + solve."""

    def test_max_link_load_sweep(self, line_state_dc):
        # The Figure 11 path: patch link budgets, re-solve warm.
        problem = _replication(line_state_dc)
        for limit in (0.0, 0.05, 0.2, 0.4, 1.0, 0.1):
            warm = problem.resolve(max_link_load=limit)
            cold = _replication(line_state_dc,
                                max_link_load=limit).solve()
            assert warm.load_cost == pytest.approx(cold.load_cost,
                                                   abs=1e-9)

    def test_beta_sweep(self, line_state_dc):
        # The Figure 18 path: patch the beta-scaled objective.
        problem = AggregationProblem(line_state_dc)
        base = problem.suggested_beta()
        for mult in (1.0, 1e-3, 1e3, 1.0):
            beta = base * mult
            warm = problem.resolve(beta=beta)
            cold = AggregationProblem(line_state_dc, beta=beta).solve()
            assert warm.load_cost == pytest.approx(cold.load_cost,
                                                   abs=1e-9)
            assert warm.comm_cost == pytest.approx(cold.comm_cost,
                                                   abs=1e-9)

    def test_volume_sweep(self, line_state_dc):
        # The Figure 15 path: patch per-class volumes.
        problem = _replication(line_state_dc)
        for factor in (1.0, 2.0, 0.5, 1.25):
            classes = _scaled(line_state_dc.classes, factor)
            warm = problem.resolve_traffic(classes)
            cold = _replication(
                line_state_dc.with_traffic(classes)).solve()
            assert warm.load_cost == pytest.approx(cold.load_cost,
                                                   abs=1e-9)

    def test_controller_refresh_matches_fresh_controller(
            self, line_state_dc):
        # The controller path: the second refresh is an incremental
        # re-solve; it must match a controller that solves cold.
        warm_ctl = NIDSController(line_state_dc)
        warm_ctl.refresh()
        classes = _scaled(line_state_dc.classes, 1.5)
        warm = warm_ctl.refresh(classes).result

        cold_ctl = NIDSController(line_state_dc)
        cold = cold_ctl.refresh(classes).result
        assert warm.load_cost == pytest.approx(cold.load_cost,
                                               abs=1e-9)


class TestBackendRegistry:
    @pytest.fixture(autouse=True)
    def _restore_default(self):
        yield
        set_default_backend(None)

    def test_builtin_backends_registered(self):
        names = available_backends()
        assert "scipy" in names
        assert "dense" in names

    def test_unknown_backend_raises(self):
        with pytest.raises(LPError, match="unknown solver backend"):
            get_backend("cplex")

    def test_set_default_validates_eagerly(self):
        with pytest.raises(LPError):
            set_default_backend("no-such-solver")

    def test_default_is_scipy(self, monkeypatch):
        monkeypatch.delenv("REPRO_SOLVER", raising=False)
        set_default_backend(None)
        assert default_backend_name() == "scipy"

    def test_env_var_overrides_builtin_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER", "dense")
        set_default_backend(None)
        assert default_backend_name() == "dense"
        assert resolve_backend(None) is get_backend("dense")

    def test_set_default_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER", "dense")
        set_default_backend("scipy")
        assert default_backend_name() == "scipy"

    def test_explicit_spec_beats_everything(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER", "scipy")
        set_default_backend("scipy")
        assert resolve_backend("dense") is get_backend("dense")

    def test_instance_spec_passes_through(self):
        backend = get_backend("dense")
        assert resolve_backend(backend) is backend

    def test_backend_interface_requires_solve(self):
        class Empty(SolverBackend):
            name = "empty"

        with pytest.raises(NotImplementedError):
            Empty().solve(None)
