"""Unit tests for the shared experiment utilities."""

import numpy as np
import pytest

from repro.experiments.common import (
    asymmetric_classes,
    evaluation_topologies,
    format_table,
    full_scale,
    quartiles,
    setup_topology,
)
from repro.topology import AsymmetricRoutingModel
from repro.topology.library import builtin_topology_names


class TestScale:
    def test_quick_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert not full_scale()
        assert evaluation_topologies(quick_count=3) == \
            builtin_topology_names()[:3]

    def test_full_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "full")
        assert full_scale()
        assert evaluation_topologies() == builtin_topology_names()

    def test_case_insensitive(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "FULL")
        assert full_scale()


class TestSetup:
    def test_setup_without_dc(self):
        setup = setup_topology("internet2")
        assert setup.state.dc_node is None
        assert setup.topology.num_nodes == 11
        assert len(setup.classes) == 110

    def test_setup_with_dc(self):
        setup = setup_topology("internet2", dc_capacity_factor=10.0)
        assert setup.state.dc_node == "DC"
        # The setup's topology stays DC-free; only the state grows.
        assert "DC" not in setup.topology.nodes
        assert "DC" in setup.state.nids_nodes

    def test_custom_volume(self):
        setup = setup_topology("internet2", total_sessions=1000.0)
        assert setup.matrix.total == pytest.approx(1000.0)


class TestAsymmetricClasses:
    def test_one_class_per_unordered_pair(self):
        setup = setup_topology("internet2")
        model = AsymmetricRoutingModel(setup.topology, setup.routing)
        classes = asymmetric_classes(setup, model, 0.5,
                                     np.random.default_rng(0))
        assert len(classes) == 55
        assert all("<->" in cls.name for cls in classes)

    def test_volumes_merge_both_directions(self):
        setup = setup_topology("internet2")
        model = AsymmetricRoutingModel(setup.topology, setup.routing)
        classes = asymmetric_classes(setup, model, 0.5,
                                     np.random.default_rng(0))
        total = sum(cls.num_sessions for cls in classes)
        assert total == pytest.approx(setup.matrix.total, rel=1e-9)


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table(["Name", "X"], [["a", 1], ["bbbb", 22]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "Name" in lines[1]
        # First column padded to the widest cell ("bbbb", 4 chars).
        assert lines[3][:4] == "a   "
        assert lines[4][:4] == "bbbb"

    def test_quartiles(self):
        summary = quartiles([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary["min"] == 1.0
        assert summary["median"] == 3.0
        assert summary["max"] == 5.0
        assert summary["q25"] == 2.0
        assert summary["q75"] == 4.0
