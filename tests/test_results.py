"""Unit tests for result objects and multi-resource formulations."""

import pytest

from repro.core import (
    LPStats,
    MirrorPolicy,
    NetworkState,
    ReplicationProblem,
    ReplicationResult,
)
from repro.traffic.classes import TrafficClass


def make_result(node_loads, dc_node=None, offloads=None):
    return ReplicationResult(
        load_cost=max(max(loads.values()) for loads in
                      node_loads.values()),
        node_loads=node_loads,
        process_fractions={},
        offload_fractions=offloads or {},
        link_loads={},
        max_link_load=0.4,
        dc_node=dc_node,
        stats=LPStats(0, 0, 0.0, 0))


class TestAssignmentResult:
    def test_max_load(self):
        result = make_result({"cpu": {"A": 0.5, "B": 0.9}})
        assert result.max_load() == 0.9

    def test_max_load_excluding_dc(self):
        result = make_result({"cpu": {"A": 0.5, "DC": 0.9}},
                             dc_node="DC")
        assert result.max_load(exclude_dc=True) == 0.5
        assert result.max_load(exclude_dc=False) == 0.9

    def test_dc_load(self):
        result = make_result({"cpu": {"A": 0.5, "DC": 0.7}},
                             dc_node="DC")
        assert result.dc_load() == 0.7

    def test_dc_load_without_dc(self):
        result = make_result({"cpu": {"A": 0.5}})
        assert result.dc_load() == 0.0

    def test_load_imbalance(self):
        result = make_result({"cpu": {"A": 0.9, "B": 0.3, "C": 0.3}})
        assert result.load_imbalance() == pytest.approx(0.9 / 0.5)

    def test_load_imbalance_all_zero(self):
        result = make_result({"cpu": {"A": 0.0, "B": 0.0}})
        assert result.load_imbalance() == 1.0

    def test_replicated_fraction(self):
        result = make_result(
            {"cpu": {"A": 0.5}},
            offloads={"c1": {("A", "DC"): 0.25, ("B", "DC"): 0.15}})
        assert result.replicated_fraction("c1") == pytest.approx(0.4)
        assert result.replicated_fraction("missing") == 0.0


class TestMultiResource:
    @pytest.fixture
    def two_resource_state(self, line_topology):
        """CPU-heavy class at A, memory-heavy class at B."""
        classes = [
            TrafficClass("A->D", "A", "D", ("A", "B", "C", "D"),
                         1000.0, footprints={"cpu": 1.0, "mem": 0.1}),
            TrafficClass("B->C", "B", "C", ("B", "C"), 500.0,
                         footprints={"cpu": 0.1, "mem": 2.0}),
        ]
        return NetworkState.calibrated(line_topology, classes,
                                       resources=("cpu", "mem"))

    def test_both_resources_provisioned(self, two_resource_state):
        assert set(two_resource_state.resources) == {"cpu", "mem"}
        # Calibration: max ingress demand per resource.
        assert two_resource_state.capacity("cpu", "A") == \
            pytest.approx(1000.0)  # cpu demand at A
        assert two_resource_state.capacity("mem", "A") == \
            pytest.approx(1000.0)  # mem demand at B: 500*2

    def test_load_cost_covers_both_resources(self, two_resource_state):
        result = ReplicationProblem(
            two_resource_state,
            mirror_policy=MirrorPolicy.none()).solve()
        for resource in ("cpu", "mem"):
            for load in result.node_loads[resource].values():
                assert load <= result.load_cost + 1e-6
        top = max(max(result.node_loads[r].values())
                  for r in ("cpu", "mem"))
        assert top == pytest.approx(result.load_cost, abs=1e-6)

    def test_ingress_max_is_one_across_resources(self,
                                                 two_resource_state):
        cpu = two_resource_state.ingress_load("cpu")
        mem = two_resource_state.ingress_load("mem")
        assert max(max(cpu.values()), max(mem.values())) == \
            pytest.approx(1.0)

    def test_optimum_balances_conflicting_resources(
            self, two_resource_state):
        """The min-max must consider both dimensions: a split optimal
        for CPU alone would overload memory and vice versa."""
        result = ReplicationProblem(
            two_resource_state,
            mirror_policy=MirrorPolicy.none()).solve()
        assert result.load_cost < 1.0  # beats ingress-only
        assert result.load_cost > 0.0
