"""Instrumentation integration: solve/shim/controller/emulation paths
report into the registry, and the JSONL trajectory they emit matches
the documented schema."""


from repro.core import MirrorPolicy, ReplicationProblem
from repro.core.controller import NIDSController
from repro.lpsolve import Model, lp_string
from repro.obs import (
    MetricsRegistry,
    get_registry,
    read_jsonl,
    use_registry,
    write_jsonl,
)
from repro.shim import FiveTuple, HashRange, Shim, ShimAction, \
    ShimConfig, ShimRule
from repro.shim.config import build_replication_configs
from repro.simulation import Emulation, TraceGenerator
from repro.simulation.tracegen import TraceSpec
from repro.traffic.classes import TrafficClass


def _solve_tiny_model():
    model = Model("tiny")
    x = model.add_variable("x", lb=0, ub=1)
    model.add_constraint(x >= 0.25)
    model.minimize(x)
    return model.solve()


class TestLPInstrumentation:
    def test_solve_emits_phase_spans_and_sizes(self):
        with use_registry(MetricsRegistry()) as reg:
            _solve_tiny_model()
        assert reg.counter_value("lp.solves") == 1.0
        assert reg.histogram("lp.build.seconds").count == 1
        assert reg.histogram("lp.solve.seconds").count == 1
        assert reg.gauge_value("lp.num_variables") == 1.0
        assert reg.gauge_value("lp.num_constraints") == 1.0

    def test_writer_emits_write_span(self):
        model = Model("tiny")
        x = model.add_variable("x", lb=0, ub=1)
        model.minimize(x)
        with use_registry(MetricsRegistry()) as reg:
            lp_string(model)
        assert reg.counter_value("lp.writes") == 1.0
        assert reg.histogram("lp.write.seconds").count == 1

    def test_disabled_registry_collects_nothing(self):
        _solve_tiny_model()
        assert get_registry().snapshot()["counters"] == {}


class TestShimInstrumentation:
    def _shim(self):
        rules = {"c": [
            ShimRule("c", HashRange("p", 0.0, 0.5), ShimAction.PROCESS),
            ShimRule("c", HashRange("o", 0.5, 1.0),
                     ShimAction.REPLICATE, target="DC"),
        ]}
        return Shim(ShimConfig(node="N1", rules=rules),
                    classifier=lambda t: "c")

    def test_decision_counters_and_hash_timing(self):
        with use_registry(MetricsRegistry()) as reg:
            shim = self._shim()
            for i in range(200):
                shim.handle(FiveTuple(6, i, 1000 + i, 2**16 + i, 80),
                            "fwd", 100.0)
        processed = reg.counter_value("shim.decision.process")
        replicated = reg.counter_value("shim.decision.replicate")
        assert reg.counter_value("shim.packets") == 200.0
        assert processed + replicated == 200.0
        assert processed == shim.counters.packets_processed
        assert replicated == shim.counters.packets_replicated
        assert reg.histogram("shim.hash_lookup.seconds").count == 200

    def test_unmonitored_class_counts_as_ignore(self):
        with use_registry(MetricsRegistry()) as reg:
            shim = Shim(ShimConfig(node="N1", rules={}),
                        classifier=lambda t: None)
            shim.handle(FiveTuple(6, 1, 1, 2, 80))
        assert reg.counter_value("shim.decision.ignore") == 1.0

    def test_zero_overhead_binding_when_disabled(self):
        # Under the default null registry the per-packet path is the
        # plain class method: no instance-level wrapper is installed.
        shim = self._shim()
        assert "handle" not in shim.__dict__
        with use_registry(MetricsRegistry()):
            instrumented = self._shim()
            assert "handle" in instrumented.__dict__


class TestControllerInstrumentation:
    def test_refresh_span_and_counters(self, line_state_dc):
        with use_registry(MetricsRegistry()) as reg:
            controller = NIDSController(line_state_dc)
            controller.refresh()
        assert reg.counter_value("controller.refreshes") == 1.0
        assert reg.histogram("controller.refresh.seconds").count == 1

    def test_second_refresh_reports_transition_overlap(self,
                                                       line_state_dc):
        with use_registry(MetricsRegistry()) as reg:
            controller = NIDSController(line_state_dc)
            first = controller.refresh()
            second = controller.refresh()
        assert first.transition is None
        assert second.transition is not None
        nodes = reg.gauge_value("controller.transition.nodes")
        assert nodes == len(second.configs)
        union_rules = reg.gauge_value("controller.transition.union_rules")
        expected = sum(first.configs[n].num_rules
                       + second.configs[n].num_rules
                       for n in second.configs)
        assert union_rules == expected

    def test_drift_trigger_counter(self, line_state_dc):
        with use_registry(MetricsRegistry()) as reg:
            controller = NIDSController(line_state_dc,
                                        drift_threshold=0.2)
            controller.refresh()
            doubled = [
                TrafficClass(name=cls.name, source=cls.source,
                             target=cls.target, path=cls.path,
                             num_sessions=cls.num_sessions * 4,
                             session_bytes=cls.session_bytes)
                for cls in line_state_dc.classes]
            assert controller.needs_refresh(doubled)
            assert controller.needs_refresh(list(
                line_state_dc.classes)) is False
        assert reg.counter_value("controller.drift_triggers") == 1.0


class TestEmulationInstrumentation:
    def test_end_to_end_trajectory_has_required_metrics(
            self, line_state_dc, tmp_path):
        """The acceptance-criteria trajectory: one optimize+replay
        cycle emits LP solve-phase timings, shim decision counters,
        and emulation throughput, all schema-valid JSONL."""
        with use_registry(MetricsRegistry()) as reg:
            result = ReplicationProblem(
                line_state_dc, mirror_policy=MirrorPolicy.datacenter(),
                max_link_load=0.4).solve()
            configs = build_replication_configs(line_state_dc, result)
            generator = TraceGenerator(
                line_state_dc.topology.nodes, line_state_dc.classes,
                spec=TraceSpec(total_sessions=300), seed=5)
            sessions = generator.generate(with_payloads=True)
            emulation = Emulation(line_state_dc, configs,
                                  generator.classifier)
            report = emulation.run_signature(sessions)
            path = tmp_path / "trajectory.jsonl"
            write_jsonl(reg, str(path))

        records = read_jsonl(path.read_text().splitlines())
        by_key = {(r["type"], r.get("name")): r for r in records}
        # LP solve-phase timings.
        assert by_key[("histogram", "lp.solve.seconds")]["count"] >= 1
        assert by_key[("histogram", "lp.build.seconds")]["count"] >= 1
        # Shim decision counters.
        assert by_key[("counter", "shim.decision.process")]["value"] > 0
        assert ("counter", "shim.packets") in by_key
        # Emulation throughput and per-node work gauges.
        assert by_key[("counter", "emulation.packets")]["value"] == \
            report.packets_total
        assert by_key[("gauge", "emulation.packets_per_second")][
            "value"] > 0
        for node in line_state_dc.nids_nodes:
            gauge = by_key[("gauge", f"emulation.work_units.{node}")]
            assert gauge["value"] == report.work_units[node]

    def test_stateful_run_reports_throughput(self, line_state_dc):
        result = ReplicationProblem(
            line_state_dc, mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=0.4).solve()
        configs = build_replication_configs(line_state_dc, result)
        generator = TraceGenerator(
            line_state_dc.topology.nodes, line_state_dc.classes,
            spec=TraceSpec(total_sessions=100), seed=5)
        sessions = generator.generate(with_payloads=False)
        with use_registry(MetricsRegistry()) as reg:
            emulation = Emulation(line_state_dc, configs,
                                  generator.classifier)
            emulation.run_stateful(sessions)
        assert reg.counter_value("emulation.packets") > 0
        assert reg.histogram("emulation.run_stateful.seconds").count == 1
