"""Unit tests for the metrics registry and JSONL export layer."""

import io
import json
import math

import pytest

from repro.obs import (
    ENV_VAR,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    SCHEMA_VERSION,
    configure_from_env,
    get_registry,
    percentile,
    read_jsonl,
    set_registry,
    snapshot_records,
    use_registry,
    validate_record,
    write_jsonl,
)


class TestCounters:
    def test_default_increment(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a")
        assert reg.counter_value("a") == 2.0

    def test_weighted_increment(self):
        reg = MetricsRegistry()
        reg.inc("bytes", 1500.0)
        reg.inc("bytes", 40.0)
        assert reg.counter_value("bytes") == 1540.0

    def test_missing_counter_is_zero(self):
        assert MetricsRegistry().counter_value("nope") == 0.0


class TestGauges:
    def test_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("load", 0.25)
        reg.gauge("load", 0.75)
        assert reg.gauge_value("load") == 0.75

    def test_missing_gauge_is_nan(self):
        assert math.isnan(MetricsRegistry().gauge_value("nope"))


class TestHistograms:
    def test_summary_statistics(self):
        reg = MetricsRegistry()
        for value in range(1, 101):
            reg.observe("h", float(value))
        summary = reg.histogram("h").summary()
        assert summary["count"] == 100
        assert summary["sum"] == pytest.approx(5050.0)
        assert summary["min"] == 1.0
        assert summary["max"] == 100.0
        assert summary["mean"] == pytest.approx(50.5)
        assert summary["p50"] == pytest.approx(50.5)
        assert summary["p95"] == pytest.approx(95.05)
        assert summary["p99"] == pytest.approx(99.01)

    def test_single_sample(self):
        reg = MetricsRegistry()
        reg.observe("h", 3.0)
        summary = reg.histogram("h").summary()
        assert summary["p50"] == summary["p99"] == 3.0

    def test_percentile_empty_is_nan(self):
        assert math.isnan(percentile([], 50.0))

    def test_missing_histogram_is_none(self):
        assert MetricsRegistry().histogram("nope") is None


class TestSpans:
    def test_span_records_elapsed_seconds(self):
        reg = MetricsRegistry()
        with reg.span("phase") as span:
            pass
        assert span.elapsed is not None and span.elapsed >= 0.0
        hist = reg.histogram("phase.seconds")
        assert hist is not None and hist.count == 1

    def test_span_records_on_exception(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with reg.span("phase"):
                raise RuntimeError("boom")
        assert reg.histogram("phase.seconds").count == 1

    def test_nested_spans(self):
        reg = MetricsRegistry()
        with reg.span("outer"):
            with reg.span("inner"):
                pass
        assert reg.histogram("outer.seconds").count == 1
        assert reg.histogram("inner.seconds").count == 1


class TestNullRegistry:
    def test_disabled_and_inert(self):
        reg = NullRegistry()
        assert not reg.enabled
        reg.inc("a")
        reg.gauge("g", 1.0)
        reg.observe("h", 1.0)
        with reg.span("s"):
            pass
        assert reg.counter_value("a") == 0.0
        assert reg.histogram("h") is None
        assert reg.snapshot() == {"counters": {}, "gauges": {},
                                  "histograms": {}}

    def test_default_global_registry_is_null(self):
        assert get_registry() is NULL_REGISTRY
        assert not get_registry().enabled


class TestGlobalRegistry:
    def test_use_registry_restores_previous(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            assert get_registry() is reg
        assert get_registry() is NULL_REGISTRY

    def test_set_registry_none_restores_null(self):
        previous = set_registry(MetricsRegistry())
        try:
            assert get_registry().enabled
        finally:
            set_registry(None)
        assert get_registry() is NULL_REGISTRY
        assert previous is NULL_REGISTRY

    def test_reset_clears_all(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.gauge("g", 1.0)
        reg.observe("h", 1.0)
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {},
                                  "histograms": {}}


class TestEnvHook:
    def test_unset_leaves_null_registry(self):
        assert configure_from_env(environ={}) is None
        assert get_registry() is NULL_REGISTRY

    def test_blank_value_ignored(self):
        assert configure_from_env(environ={ENV_VAR: "  "}) is None

    def test_set_installs_recording_registry(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        try:
            reg = configure_from_env(environ={ENV_VAR: str(path)},
                                     register_atexit=False)
            assert reg is not None and get_registry() is reg
            reg.inc("demo")
            write_jsonl(reg, str(path))
        finally:
            set_registry(None)
        records = read_jsonl(path.read_text().splitlines())
        assert {"type": "counter", "name": "demo",
                "value": 1.0} in records


class TestJsonlExport:
    def _populated(self):
        reg = MetricsRegistry()
        reg.inc("c", 2.0)
        reg.gauge("g", 0.5)
        reg.observe("h", 1.0)
        reg.observe("h", 3.0)
        return reg

    def test_meta_record_first(self):
        records = snapshot_records(self._populated(), timestamp=123.0)
        assert records[0] == {"type": "meta",
                              "schema": SCHEMA_VERSION, "ts": 123.0}

    def test_round_trip_stream(self):
        buffer = io.StringIO()
        count = write_jsonl(self._populated(), buffer)
        lines = buffer.getvalue().splitlines()
        assert len(lines) == count == 4
        records = read_jsonl(lines)
        by_name = {r.get("name"): r for r in records[1:]}
        assert by_name["c"]["value"] == 2.0
        assert by_name["g"]["value"] == 0.5
        assert by_name["h"]["count"] == 2
        assert by_name["h"]["mean"] == pytest.approx(2.0)

    def test_every_line_is_strict_json(self):
        reg = self._populated()
        buffer = io.StringIO()
        write_jsonl(reg, buffer)
        for line in buffer.getvalue().splitlines():
            validate_record(json.loads(line))

    def test_validate_rejects_bad_records(self):
        for bad in ({"type": "meta", "schema": 99, "ts": 1.0},
                    {"type": "counter", "value": 1.0},
                    {"type": "counter", "name": "x", "value": "y"},
                    {"type": "histogram", "name": "h"},
                    {"type": "mystery", "name": "x"}):
            with pytest.raises(ValueError):
                validate_record(bad)


class TestTimelineExport:
    ROWS = [
        {"epoch": 0, "t": 0.0,
         "metrics": {"coverage": 1.0, "miss_rate": 0.0}},
        {"epoch": 1, "t": 300.0,
         "metrics": {"coverage": 0.9, "miss_rate": float("nan")}},
    ]

    def test_meta_record_first_with_source(self):
        from repro.obs import timeline_records

        records = timeline_records(self.ROWS, source="unit",
                                   timestamp=7.0)
        assert records[0] == {"type": "timeline-meta",
                              "schema": SCHEMA_VERSION, "ts": 7.0,
                              "source": "unit"}
        assert [r["epoch"] for r in records[1:]] == [0, 1]

    def test_round_trip_and_nan_cleaning(self):
        import io as io_

        from repro.obs import read_timeline_jsonl, write_timeline_jsonl

        buffer = io_.StringIO()
        count = write_timeline_jsonl(self.ROWS, buffer, source="unit")
        lines = buffer.getvalue().splitlines()
        assert len(lines) == count == 3
        records = read_timeline_jsonl(lines)
        assert records[2]["metrics"]["miss_rate"] is None  # NaN -> null
        assert records[1]["metrics"]["coverage"] == 1.0
        for line in lines:
            assert json.loads(line)  # strict JSON, no bare NaN

    def test_write_to_path(self, tmp_path):
        from repro.obs import read_timeline_jsonl, write_timeline_jsonl

        path = tmp_path / "timeline.jsonl"
        write_timeline_jsonl(self.ROWS, str(path), source="unit")
        records = read_timeline_jsonl(path.read_text().splitlines())
        assert len(records) == 3

    def test_validate_rejects_bad_timeline_records(self):
        from repro.obs import validate_timeline_record

        for bad in ({"type": "timeline-meta", "schema": 99, "ts": 1.0,
                     "source": "x"},
                    {"type": "timeline-meta", "schema": SCHEMA_VERSION,
                     "ts": 1.0},
                    {"type": "epoch", "t": 0.0, "metrics": {}},
                    {"type": "epoch", "epoch": 0, "metrics": {}},
                    {"type": "epoch", "epoch": 0, "t": 0.0},
                    {"type": "epoch", "epoch": 0, "t": 0.0,
                     "metrics": {"m": "high"}},
                    {"type": "mystery"}):
            with pytest.raises(ValueError):
                validate_timeline_record(bad)
