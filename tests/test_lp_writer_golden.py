"""Golden-file test: the LP text for a small fixed replication
instance is byte-stable.

Any change to variable ordering, constraint naming, coefficient
formatting, or — most importantly — the formulation itself (an extra
or missing constraint) shows up as a diff against the checked-in
golden file. Regenerate deliberately with::

    PYTHONPATH=src python tests/test_lp_writer_golden.py
"""

import pathlib

from repro.core import MirrorPolicy, ReplicationProblem
from repro.core.inputs import NetworkState
from repro.lpsolve import lp_string
from repro.topology.routing import shortest_path_routing
from repro.topology.topology import Topology
from repro.traffic.classes import TrafficClass

GOLDEN = pathlib.Path(__file__).parent / "golden" / \
    "replication_small.lp"


def _small_instance() -> NetworkState:
    """A fixed three-node triangle with two classes; fully
    deterministic (no randomness anywhere in the construction)."""
    topology = Topology(
        "tri", ["A", "B", "C"],
        [("A", "B"), ("B", "C"), ("A", "C")],
        populations={"A": 2.0, "B": 1.0, "C": 1.0})
    routing = shortest_path_routing(topology)
    classes = [
        TrafficClass(name="A->B", source="A", target="B",
                     path=routing.path("A", "B"),
                     num_sessions=800.0, session_bytes=5_000.0),
        TrafficClass(name="A->C", source="A", target="C",
                     path=routing.path("A", "C"),
                     num_sessions=400.0, session_bytes=5_000.0),
    ]
    return NetworkState.calibrated(topology, classes,
                                   dc_capacity_factor=4.0)


def _golden_text() -> str:
    state = _small_instance()
    model = ReplicationProblem(
        state, mirror_policy=MirrorPolicy.datacenter(),
        max_link_load=0.5).build_model()
    return lp_string(model)


def test_replication_lp_text_is_byte_stable():
    assert GOLDEN.exists(), (
        f"golden file missing: {GOLDEN}; regenerate with "
        f"`PYTHONPATH=src python {__file__}`")
    assert _golden_text() == GOLDEN.read_text(), (
        "LP text drifted from the golden file — if the formulation "
        "change is intentional, regenerate the golden file")


def test_golden_instance_still_solves():
    """The pinned instance stays feasible (golden file is not stale
    relative to a solvable model)."""
    state = _small_instance()
    result = ReplicationProblem(
        state, mirror_policy=MirrorPolicy.datacenter(),
        max_link_load=0.5).solve()
    assert result.load_cost > 0.0


if __name__ == "__main__":  # regenerate the golden file
    GOLDEN.parent.mkdir(exist_ok=True)
    GOLDEN.write_text(_golden_text())
    print(f"wrote {GOLDEN}")
