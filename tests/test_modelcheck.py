"""Model verification: LP structure, result sanity, shim tables.

The hypothesis section is the acceptance property: every LP the four
paper problems (Replication / Split / Aggregation / Combined)
generate on the tinet evaluation topology — cold-built or warm
re-solved at drawn parameters — must pass ``check_model`` and
``check_result`` with zero findings. The unit sections construct each
defect the checker exists for and assert the right rule fires.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.analysis.modelcheck import (
    ModelCheckError,
    check_model,
    check_result,
    check_shard_capacity,
    check_sharded_configs,
    check_shim_configs,
    precheck,
)
from repro.core.aggregation import AggregationProblem
from repro.core.combined import CombinedProblem
from repro.core.mirrors import MirrorPolicy
from repro.core.replication import ReplicationProblem
from repro.core.split import SplitTrafficProblem
from repro.experiments.common import setup_topology
from repro.lpsolve.model import Model
from repro.shim.config import (
    ShimAction,
    ShimConfig,
    ShimRule,
    build_aggregation_configs,
    build_replication_configs,
    build_split_configs,
)
from repro.shim.ranges import HashRange


def rule_ids(findings):
    return sorted({f.rule_id for f in findings})


# -- LP structure (MDL) ---------------------------------------------------

class TestCheckModel:
    def test_clean_model_has_no_findings(self):
        m = Model("clean")
        x = m.add_variable("x", ub=1.0)
        y = m.add_variable("y", ub=1.0)
        m.add_constraint(x + y <= 1.0, name="cap")
        m.minimize(x + 2 * y)
        assert check_model(m) == []

    def test_dangling_variable(self):
        m = Model("dangling")
        x = m.add_variable("x", ub=1.0)
        m.add_variable("orphan", ub=1.0)
        m.add_constraint(x <= 1.0)
        m.minimize(x)
        findings = check_model(m)
        assert rule_ids(findings) == ["MDL001"]
        assert "orphan" in findings[0].message

    def test_duplicate_rows_collide_across_senses(self):
        # x >= 1 and -x <= -1 are the same half-space; the GE row is
        # canonicalized into LE form so they collide.
        m = Model("dup")
        x = m.add_variable("x", ub=2.0)
        m.add_constraint(x >= 1.0, name="stated_ge")
        m.add_constraint(-x <= -1.0, name="stated_le")
        m.minimize(x)
        findings = check_model(m)
        assert rule_ids(findings) == ["MDL002"]
        assert "stated_le" in findings[0].message

    def test_zeroed_row_reported_as_degenerate(self):
        # Simulates a bad patch that zeroed a row's coefficients.
        m = Model("zeroed")
        x = m.add_variable("x", ub=1.0)
        con = m.add_constraint(x <= 1.0, name="was_cap")
        m.minimize(x)
        con.expr.coeffs[x] = 0.0
        findings = check_model(m)
        assert "MDL003" in rule_ids(findings)

    def test_contradictory_bounds(self):
        m = Model("bounds")
        x = m.add_variable("x", ub=1.0)
        m.add_constraint(x <= 1.0)
        m.minimize(x)
        x.lb = 2.0  # simulate a bad in-place patch
        findings = check_model(m)
        assert rule_ids(findings) == ["MDL004"]

    def test_cover_row_with_non_unit_coefficient(self):
        m = Model("cover")
        p = m.add_variable("p", ub=1.0)
        o = m.add_variable("o", ub=1.0)
        m.add_constraint(2 * p + o == 1.0, name="cover[web]")
        m.minimize(p + o)
        findings = check_model(m)
        assert rule_ids(findings) == ["MDL005"]
        assert "non-unit" in findings[0].message

    def test_cover_row_with_wrong_rhs(self):
        m = Model("cover-rhs")
        p = m.add_variable("p", ub=1.0)
        o = m.add_variable("o", ub=1.0)
        m.add_constraint(p + o == 2.0, name="cover[web]")
        m.minimize(p + o)
        findings = check_model(m)
        assert rule_ids(findings) == ["MDL005"]
        assert "instead of 1" in findings[0].message

    def test_relaxed_cover_row_at_most_one_is_legal(self):
        m = Model("cover-le")
        p = m.add_variable("p", ub=1.0)
        o = m.add_variable("o", ub=1.0)
        m.add_constraint(p + o <= 1.0, name="cover[web]")
        m.minimize(p + o)
        assert check_model(m) == []


class TestPrecheck:
    def test_clean_model_passes(self):
        m = Model("ok")
        x = m.add_variable("x", ub=1.0)
        m.add_constraint(x <= 1.0)
        m.minimize(x)
        precheck(m)  # must not raise

    def test_bad_model_raises_with_findings(self):
        m = Model("bad")
        x = m.add_variable("x", ub=1.0)
        m.add_variable("orphan", ub=1.0)
        m.add_constraint(x <= 1.0)
        m.minimize(x)
        with pytest.raises(ModelCheckError) as excinfo:
            precheck(m)
        assert excinfo.value.findings
        assert "MDL001" in str(excinfo.value)

    def test_env_guard_wires_precheck_into_solve(self, monkeypatch,
                                                 line_state):
        monkeypatch.setenv("REPRO_VERIFY_MODELS", "1")
        problem = ReplicationProblem(line_state)
        result = problem.solve()  # guard active, clean model passes
        assert result.process_fractions


# -- solved-result sanity (RES) -------------------------------------------

class _FakeResult:
    def __init__(self, process=None, offload=None, fwd=None, rev=None):
        self.process_fractions = process or {}
        self.offload_fractions = offload or {}
        self.fwd_offloads = fwd or {}
        self.rev_offloads = rev or {}


class TestCheckResult:
    def test_fraction_outside_unit_interval(self):
        findings = check_result(_FakeResult(
            process={"web": {"A": 1.2}}))
        assert "RES001" in rule_ids(findings)

    def test_over_assigned_class(self):
        findings = check_result(_FakeResult(
            process={"web": {"A": 0.7, "B": 0.5}}))
        assert rule_ids(findings) == ["RES002"]

    def test_directional_offload_past_the_class(self):
        findings = check_result(_FakeResult(
            process={"web": {"A": 0.5}},
            fwd={"web": {"B": 0.6}}))
        assert rule_ids(findings) == ["RES002"]
        assert "fwd" in findings[0].message

    def test_valid_partition_is_clean(self):
        findings = check_result(_FakeResult(
            process={"web": {"A": 0.6}},
            offload={"web": {("A", "B"): 0.4}}))
        assert findings == []


# -- shim range tables (SHIM) ---------------------------------------------

def _config(node, rules):
    return ShimConfig(node=node, rules={"web": rules})


def _process(start, end, direction="both"):
    return ShimRule("web", HashRange(("p",), start, end),
                    ShimAction.PROCESS, direction=direction)


class TestCheckShimConfigs:
    def test_full_tiling_is_clean(self):
        configs = {
            "A": _config("A", [_process(0.0, 0.6)]),
            "B": _config("B", [_process(0.6, 1.0)]),
        }
        assert check_shim_configs(configs) == []

    def test_overlap_within_one_node_is_caught(self):
        # Acceptance check: an overlapping range table must not
        # compile silently.
        configs = {
            "A": _config("A", [_process(0.0, 0.6),
                               _process(0.5, 1.0)]),
        }
        findings = check_shim_configs(configs)
        assert "SHIM001" in rule_ids(findings)

    def test_cross_node_double_coverage_is_caught(self):
        configs = {
            "A": _config("A", [_process(0.0, 0.6)]),
            "B": _config("B", [_process(0.5, 1.0)]),
        }
        findings = check_shim_configs(configs)
        assert rule_ids(findings) == ["SHIM002"]
        assert "analyzed twice" in findings[0].message

    def test_coverage_gap_is_caught(self):
        configs = {
            "A": _config("A", [_process(0.0, 0.4)]),
            "B": _config("B", [_process(0.6, 1.0)]),
        }
        findings = check_shim_configs(configs)
        assert rule_ids(findings) == ["SHIM002"]
        assert "gap" in findings[0].message

    def test_uncovered_tail_is_caught(self):
        configs = {"A": _config("A", [_process(0.0, 0.8)])}
        findings = check_shim_configs(configs)
        assert rule_ids(findings) == ["SHIM002"]
        assert "tail" in findings[0].message

    def test_partial_coverage_allowed_when_requested(self):
        configs = {"A": _config("A", [_process(0.0, 0.8)])}
        assert check_shim_configs(
            configs, require_full_coverage=False) == []

    def test_directions_are_disjoint_buckets(self):
        # fwd and rev ranges may overlap each other: different packets.
        configs = {
            "A": _config("A", [_process(0.0, 0.7, "fwd"),
                               _process(0.0, 0.7, "rev")]),
            "B": _config("B", [_process(0.7, 1.0, "fwd"),
                               _process(0.7, 1.0, "rev")]),
        }
        assert check_shim_configs(configs) == []


# -- sharded control plane (SHRD) -----------------------------------------

def _cls_rule(cls_name, start, end, direction="both"):
    return ShimRule(cls_name, HashRange(("p",), start, end),
                    ShimAction.PROCESS, direction=direction)


def _cls_config(node, cls_name, rules):
    return ShimConfig(node=node, rules={cls_name: rules})


class TestCheckShardedConfigs:
    def test_disjoint_regions_fully_tiled_are_clean(self):
        regional = {
            "region-0": {"A": _cls_config("A", "web",
                                          [_cls_rule("web", 0.0, 0.5)]),
                         "B": _cls_config("B", "web",
                                          [_cls_rule("web", 0.5, 1.0)])},
            "region-1": {"C": _cls_config("C", "dns",
                                          [_cls_rule("dns", 0.0, 1.0)])},
        }
        assert check_sharded_configs(regional, ["web", "dns"]) == []

    def test_multi_region_class_ownership_is_caught(self):
        regional = {
            "region-0": {"A": _cls_config("A", "web",
                                          [_cls_rule("web", 0.0, 0.5)])},
            "region-1": {"C": _cls_config("C", "web",
                                          [_cls_rule("web", 0.5, 1.0)])},
        }
        findings = check_sharded_configs(regional, ["web"])
        assert "SHRD001" in rule_ids(findings)
        assert any("2 regions" in f.message for f in findings)

    def test_cross_region_overlap_is_caught(self):
        regional = {
            "region-0": {"A": _cls_config("A", "web",
                                          [_cls_rule("web", 0.0, 0.6)])},
            "region-1": {"C": _cls_config("C", "web",
                                          [_cls_rule("web", 0.5, 1.0)])},
        }
        findings = check_sharded_configs(regional, ["web"])
        assert any("claim the same hash units" in f.message
                   for f in findings)

    def test_union_gap_is_caught(self):
        regional = {
            "region-0": {"A": _cls_config("A", "web",
                                          [_cls_rule("web", 0.0, 0.4),
                                           _cls_rule("web", 0.6, 1.0)])},
        }
        findings = check_sharded_configs(regional, ["web"])
        assert rule_ids(findings) == ["SHRD001"]
        assert any("analyzed nowhere" in f.message for f in findings)

    def test_uncovered_tail_is_caught(self):
        regional = {
            "region-0": {"A": _cls_config("A", "web",
                                          [_cls_rule("web", 0.0, 0.8)])},
        }
        findings = check_sharded_configs(regional, ["web"])
        assert any("tail" in f.message for f in findings)

    def test_vanished_class_is_caught(self):
        """A class no region configures — the failover bug SHRD001
        exists to catch — is reported for both directions."""
        regional = {
            "region-0": {"A": _cls_config("A", "web",
                                          [_cls_rule("web", 0.0, 1.0)])},
        }
        findings = check_sharded_configs(regional, ["web", "dns"])
        assert len(findings) == 2
        assert all("dns" in f.message for f in findings)


class TestCheckShardCapacity:
    CAPS = {"dc": 100.0, "X": 10.0}

    def test_exact_split_is_clean(self):
        allocations = {"region-0": {"dc": 60.0},
                       "region-1": {"dc": 40.0}}
        assert check_shard_capacity(self.CAPS, allocations) == []

    def test_oversubscription_is_caught(self):
        allocations = {"region-0": {"dc": 80.0},
                       "region-1": {"dc": 40.0}}
        findings = check_shard_capacity(self.CAPS, allocations)
        assert rule_ids(findings) == ["SHRD002"]
        assert "dc" in findings[0].message

    def test_unknown_node_is_caught(self):
        findings = check_shard_capacity(
            self.CAPS, {"region-0": {"ghost": 5.0}})
        assert rule_ids(findings) == ["SHRD002"]
        assert "unknown node" in findings[0].message

    def test_negative_allocation_is_caught(self):
        findings = check_shard_capacity(
            self.CAPS, {"region-0": {"X": -1.0}})
        assert rule_ids(findings) == ["SHRD002"]
        assert "negative" in findings[0].message


# -- the acceptance property on tinet -------------------------------------

_TINET = {}


def _tinet_problems():
    """Build (once) the four paper problems on tinet."""
    if not _TINET:
        dc = setup_topology("tinet", dc_capacity_factor=10.0)
        plain = setup_topology("tinet")
        _TINET["dc_state"] = dc.state
        _TINET["plain_state"] = plain.state
        _TINET["replication"] = ReplicationProblem(
            dc.state, mirror_policy=MirrorPolicy.datacenter())
        _TINET["split"] = SplitTrafficProblem(dc.state)
        _TINET["aggregation"] = AggregationProblem(plain.state)
        _TINET["combined"] = CombinedProblem(dc.state)
    return _TINET


@pytest.mark.slow
class TestPaperProblemsOnTinet:
    @settings(max_examples=8, deadline=None)
    @given(kind=st.sampled_from(["replication", "split",
                                 "aggregation", "combined"]),
           knob=st.floats(min_value=0.3, max_value=0.9))
    def test_generated_lps_pass_modelcheck(self, kind, knob):
        problems = _tinet_problems()
        problem = problems[kind]
        if kind in ("replication", "split"):
            result = problem.resolve(max_link_load=knob)
        elif kind == "aggregation":
            result = problem.resolve(beta=knob)
        else:
            result = problem.resolve(beta=knob, max_link_load=knob)
        assert check_model(problem.build_model()) == []
        assert check_result(result) == []

    def test_compiled_configs_pass_shim_checks(self):
        problems = _tinet_problems()
        rep = problems["replication"].resolve(max_link_load=0.4)
        configs = build_replication_configs(problems["dc_state"], rep)
        assert check_shim_configs(configs) == []

        agg = problems["aggregation"].resolve(beta=0.5)
        configs = build_aggregation_configs(problems["plain_state"],
                                            agg)
        assert check_shim_configs(configs) == []

        # Split deliberately leaves hash space uncovered (missed
        # sessions are the objective); only overlap rules apply.
        spl = problems["split"].resolve(max_link_load=0.4)
        configs = build_split_configs(problems["dc_state"], spl)
        assert check_shim_configs(
            configs, require_full_coverage=False) == []
