"""End-to-end: node failure -> controller refresh on a real topology.

Runs the full operational loop on tinet (41 PoPs, ~1600 classes): a
calibrated DC deployment is solved, a busy PoP dies, the state is
rebuilt via :func:`repro.core.failures.fail_node`, and a fresh
controller re-solves. The re-solved configs must cover every surviving
class — including every rerouted one — and the reported
``FailureImpact.lost_fraction`` must equal the session mass of the
classes that terminated at the dead PoP.
"""

import pytest

from repro.core import MirrorPolicy
from repro.core.controller import NIDSController
from repro.core.failures import fail_node
from repro.experiments.common import setup_topology
from repro.runtime.rollout import coverage_report


@pytest.fixture(scope="module")
def tinet_state():
    return setup_topology("tinet", dc_capacity_factor=10.0).state


def _pick_victim(state):
    """The busiest-transit PoP whose death keeps every surviving class
    routable and the datacenter reachable."""
    by_transit = sorted(
        (n for n in state.topology.nodes if n != state.dc_node),
        key=lambda node: -sum(cls.num_sessions
                              for cls in state.classes
                              if node in cls.path and
                              node not in (cls.source, cls.target)))
    for node in by_transit:
        try:
            new_state, impact = fail_node(state, node)
        except ValueError:
            continue
        try:
            for survivor in new_state.topology.nodes:
                new_state.routing.path(survivor, new_state.dc_node)
        except KeyError:
            continue
        if impact.rerouted_classes and impact.dropped_classes:
            return node, new_state, impact
    raise AssertionError("no suitable victim on tinet")


def test_failure_then_refresh_keeps_rerouted_classes_covered(
        tinet_state):
    controller = NIDSController(
        tinet_state, mirror_policy=MirrorPolicy.datacenter(),
        max_link_load=0.4)
    first = controller.refresh()
    assert coverage_report(
        tinet_state.classes, dict(first.configs)).coverage == \
        pytest.approx(1.0)

    victim, new_state, impact = _pick_victim(tinet_state)

    # lost_fraction is exactly the dropped classes' session mass.
    dropped_mass = sum(cls.num_sessions for cls in tinet_state.classes
                       if victim in (cls.source, cls.target))
    total_mass = sum(cls.num_sessions for cls in tinet_state.classes)
    assert impact.lost_fraction == pytest.approx(
        dropped_mass / total_mass)
    assert sorted(impact.dropped_classes) == sorted(
        cls.name for cls in tinet_state.classes
        if victim in (cls.source, cls.target))

    # The rebuilt state re-solves...
    rebuilt = NIDSController(
        new_state, mirror_policy=MirrorPolicy.datacenter(),
        max_link_load=0.4)
    rollout = rebuilt.refresh()
    assert rebuilt.current_result is not None
    assert rebuilt.current_result.load_cost > 0

    # ...and every surviving class, rerouted ones included, is fully
    # covered by the new configs.
    report = coverage_report(new_state.classes, dict(rollout.configs))
    assert report.coverage == pytest.approx(1.0)
    rerouted = set(impact.rerouted_classes)
    assert rerouted
    for name in rerouted:
        assert report.class_coverage[name] == pytest.approx(1.0), name

    # Rerouted paths avoid the dead node.
    by_name = {cls.name: cls for cls in new_state.classes}
    for name in rerouted:
        assert victim not in by_name[name].path
