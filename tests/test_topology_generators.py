"""Unit tests for the synthetic topology generators."""

import pytest

from repro.topology.generators import (
    synthetic_enterprise_topology,
    synthetic_isp_topology,
)


class TestISPGenerator:
    def test_basic_shape(self):
        topo = synthetic_isp_topology("isp", num_pops=30, seed=1)
        assert topo.num_nodes == 30
        assert topo.is_connected()

    def test_deterministic(self):
        a = synthetic_isp_topology("isp", 25, seed=9)
        b = synthetic_isp_topology("isp", 25, seed=9)
        assert a.links == b.links
        assert a.populations == b.populations

    def test_seed_changes_structure(self):
        a = synthetic_isp_topology("isp", 25, seed=1)
        b = synthetic_isp_topology("isp", 25, seed=2)
        assert a.links != b.links

    def test_mean_degree_close_to_target(self):
        topo = synthetic_isp_topology("isp", 50, seed=3,
                                      mean_degree=3.5)
        mean = 2.0 * topo.num_links / topo.num_nodes
        assert 2.5 <= mean <= 4.5

    def test_no_degree_one_nodes(self):
        topo = synthetic_isp_topology("isp", 40, seed=4)
        assert all(topo.degree(n) >= 2 for n in topo.nodes)

    def test_heavy_tailed_degrees(self):
        topo = synthetic_isp_topology("isp", 60, seed=5,
                                      mean_degree=3.0)
        degrees = sorted((topo.degree(n) for n in topo.nodes),
                         reverse=True)
        # Hub nodes should be far above the mean (Rocketfuel-like).
        assert degrees[0] >= 2.0 * (sum(degrees) / len(degrees))

    def test_too_few_pops_rejected(self):
        with pytest.raises(ValueError):
            synthetic_isp_topology("isp", 2, seed=1)

    def test_low_mean_degree_rejected(self):
        with pytest.raises(ValueError):
            synthetic_isp_topology("isp", 10, seed=1, mean_degree=1.5)

    def test_positive_populations(self):
        topo = synthetic_isp_topology("isp", 20, seed=6)
        assert all(p > 0 for p in topo.populations.values())


class TestEnterpriseGenerator:
    def test_shape(self):
        topo = synthetic_enterprise_topology(num_pops=23, seed=23)
        assert topo.num_nodes == 23
        assert topo.is_connected()

    def test_gateway_core_ring(self):
        topo = synthetic_enterprise_topology(num_pops=23, seed=23,
                                             num_sites=4)
        gateways = [n for n in topo.nodes if n.startswith("gw")]
        assert len(gateways) == 4
        for i in range(4):
            assert topo.has_link(f"gw{i}", f"gw{(i + 1) % 4}")

    def test_access_nodes_attach_to_gateways(self):
        topo = synthetic_enterprise_topology(num_pops=23, seed=23)
        for node in topo.nodes:
            if node.startswith("acc"):
                assert any(peer.startswith("gw") or
                           peer.startswith("acc")
                           for peer in topo.neighbors(node))

    def test_too_few_pops_rejected(self):
        with pytest.raises(ValueError):
            synthetic_enterprise_topology(num_pops=5, num_sites=4)

    def test_deterministic(self):
        a = synthetic_enterprise_topology(23, seed=1)
        b = synthetic_enterprise_topology(23, seed=1)
        assert a.links == b.links
