"""Tests for LP-format export and constant-constraint guards."""

import pytest

from repro.lpsolve import Model, ModelError, lp_string
from repro.core import MirrorPolicy, ReplicationProblem


class TestWriter:
    def test_minimal_model(self):
        m = Model("demo")
        x = m.add_variable("x", lb=0, ub=1)
        y = m.add_variable("y")
        m.add_constraint(x + 2 * y >= 1, name="cover")
        m.minimize(3 * x + y)
        text = lp_string(m)
        assert text.startswith("\\ demo\nMinimize")
        assert "obj: + 3 x + 1 y" in text
        assert "cover: + 1 x + 2 y >= 1" in text
        assert "0 <= x <= 1" in text
        assert text.rstrip().endswith("End")

    def test_maximize_sense(self):
        m = Model()
        x = m.add_variable("x", ub=5)
        m.maximize(x)
        assert "Maximize" in lp_string(m)

    def test_name_sanitization(self):
        m = Model()
        x = m.add_variable("p[c->d,N1]", lb=0, ub=1)
        m.add_constraint(x <= 1, name="link[A,B]")
        m.minimize(x)
        text = lp_string(m)
        assert "p_c__d_N1_" in text
        assert "link_A_B_" in text
        assert "[" not in text.split("\n", 1)[1]

    def test_no_objective_rejected(self):
        m = Model()
        m.add_variable("x")
        with pytest.raises(ValueError):
            lp_string(m)

    def test_full_formulation_exports(self, line_state_dc):
        problem = ReplicationProblem(
            line_state_dc, mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=0.4)
        model = problem.build_model()
        text = lp_string(model)
        assert "Minimize" in text
        assert "Subject To" in text
        # One coverage row per class.
        assert text.count("cover_") == len(line_state_dc.classes)

    def test_roundtrip_solve_consistency(self):
        """Writing doesn't disturb the model; it still solves."""
        m = Model()
        x = m.add_variable("x")
        m.add_constraint(x >= 2)
        m.minimize(x)
        lp_string(m)
        assert m.solve().objective_value == pytest.approx(2.0)


class TestConstantConstraints:
    def test_tautology_dropped(self):
        m = Model()
        x = m.add_variable("x", lb=1, ub=1)
        m.add_constraint((x - x) <= 5)  # 0 <= 5, trivially true
        m.minimize(x)
        assert m.num_constraints == 0
        assert m.solve().objective_value == pytest.approx(1.0)

    def test_contradiction_rejected_at_build(self):
        m = Model()
        x = m.add_variable("x")
        with pytest.raises(ModelError):
            m.add_constraint((x - x) >= 5)  # 0 >= 5, impossible

    def test_constant_equality_contradiction(self):
        m = Model()
        x = m.add_variable("x")
        with pytest.raises(ModelError):
            m.add_constraint((x - x) == 1)
