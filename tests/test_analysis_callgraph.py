"""The cross-file analysis substrate: call graph + seed taint.

These are the unit-level contracts the concurrency rule pack builds
on: conservative call resolution (bare names, ``self.`` methods,
unique project-wide methods), handler-root extraction from schedule
sites (names, bound methods, lambdas, ``functools.partial``), write
site classification, and seed-provenance rooting.
"""

from __future__ import annotations

import ast

import pytest

from repro.analysis.callgraph import (
    CallGraph,
    module_name_from_path,
    normalize_expr,
)
from repro.analysis.dataflow import (
    SeedTaint,
    is_seed_name,
    iter_scoped_calls,
    scope_env,
)


def graph_of(*files):
    graph = CallGraph()
    for path, source in files:
        graph.add_module(path, ast.parse(source))
    graph.finalize()
    return graph


class TestModuleNames:
    @pytest.mark.parametrize("path,expected", [
        ("src/repro/runtime/events.py", "repro.runtime.events"),
        ("repro/runtime/__init__.py", "repro.runtime"),
        ("mod.py", "mod"),
    ])
    def test_mapping(self, path, expected):
        assert module_name_from_path(path) == expected

    def test_normalize_collapses_whitespace(self):
        node = ast.parse("epoch  *  300.0", mode="eval").body
        assert normalize_expr(node) == "epoch * 300.0"


class TestCallResolution:
    def test_bare_name_resolves_to_module_function(self):
        graph = graph_of(("runtime/a.py",
                          "def helper():\n    pass\n\n"
                          "def caller():\n    helper()\n"))
        assert "runtime.a.helper" in graph.edges["runtime.a.caller"]

    def test_self_method_resolves_within_class(self):
        graph = graph_of(("runtime/a.py",
                          "class C:\n"
                          "    def run(self):\n"
                          "        self.step()\n"
                          "    def step(self):\n"
                          "        pass\n"))
        assert "runtime.a.C.step" in graph.edges["runtime.a.C.run"]

    def test_unique_method_name_resolves_across_modules(self):
        graph = graph_of(
            ("runtime/a.py",
             "class Sink:\n"
             "    def flush(self):\n"
             "        pass\n"),
            ("runtime/b.py",
             "def drive(sink):\n    sink.flush()\n"))
        assert "runtime.a.Sink.flush" in graph.edges["runtime.b.drive"]

    def test_ambiguous_method_name_left_unresolved(self):
        graph = graph_of(
            ("runtime/a.py",
             "class A:\n"
             "    def flush(self):\n        pass\n"),
            ("runtime/b.py",
             "class B:\n"
             "    def flush(self):\n        pass\n"),
            ("runtime/c.py",
             "def drive(x):\n    x.flush()\n"))
        targets = graph.edges.get("runtime.c.drive", set())
        assert "runtime.a.A.flush" not in targets
        assert "runtime.b.B.flush" not in targets


class TestHandlerRoots:
    def test_scheduled_self_method_is_handler(self):
        graph = graph_of(("runtime/a.py",
                          "class D:\n"
                          "    def start(self, loop):\n"
                          "        loop.schedule_at(0.0, self.tick)\n"
                          "    def tick(self):\n"
                          "        self.flush()\n"
                          "    def flush(self):\n"
                          "        pass\n"))
        reachable = graph.handler_reachable()
        assert "runtime.a.D.tick" in reachable
        assert "runtime.a.D.flush" in reachable  # transitive
        assert "runtime.a.D.start" not in reachable

    def test_scheduled_lambda_body_is_reachable(self):
        graph = graph_of(("runtime/a.py",
                          "def push():\n    pass\n\n"
                          "def start(loop):\n"
                          "    loop.schedule_in(1.0, lambda: push())\n"))
        assert "runtime.a.push" in graph.handler_reachable()

    def test_partial_unwraps_to_inner_action(self):
        graph = graph_of(("runtime/a.py",
                          "from functools import partial\n\n"
                          "def emit(tag):\n    pass\n\n"
                          "def start(loop):\n"
                          "    loop.schedule_in(1.0, "
                          "partial(emit, 'x'))\n"))
        assert "runtime.a.emit" in graph.handler_reachable()

    def test_schedule_sites_record_time_expr(self):
        graph = graph_of(("runtime/a.py",
                          "def start(loop, epoch):\n"
                          "    loop.schedule_at(epoch * 300.0, start)\n"))
        [site] = graph.schedule_sites
        assert site.method == "schedule_at"
        assert site.time_expr == "epoch * 300.0"


class TestWriteSites:
    def _kinds(self, source):
        graph = graph_of(("runtime/a.py", source))
        return {(w.target, w.kind) for w in graph.write_sites}

    def test_global_rebind(self):
        kinds = self._kinds(
            "COUNT = 0\n\n"
            "def bump():\n"
            "    global COUNT\n"
            "    COUNT = COUNT + 1\n")
        assert ("COUNT", "rebind") in kinds

    def test_store_through_module_binding(self):
        kinds = self._kinds(
            "REGISTRY = {}\n\n"
            "def put(k, v):\n"
            "    REGISTRY[k] = v\n")
        assert ("REGISTRY", "store") in kinds

    def test_mutating_method_call(self):
        kinds = self._kinds(
            "QUEUE = []\n\n"
            "def push(item):\n"
            "    QUEUE.append(item)\n")
        assert ("QUEUE", "mutate") in kinds

    def test_self_attribute_store_is_not_module_state(self):
        assert self._kinds(
            "class C:\n"
            "    def set(self, v):\n"
            "        self.value = v\n") == set()

    def test_module_level_assignment_is_not_a_write_site(self):
        # Top-level statements run once at import; only writes from
        # inside callables can race.
        assert self._kinds("COUNT = 0\nCOUNT = COUNT + 1\n") == set()


class TestSeedTaint:
    def _env(self, source, func="f"):
        tree = ast.parse(source)
        scope = next(n for n in ast.walk(tree)
                     if isinstance(n, ast.FunctionDef)
                     and n.name == func)
        return scope_env(scope, frozenset())

    def _expr(self, text):
        return ast.parse(text, mode="eval").body

    @pytest.mark.parametrize("name,expected", [
        ("seed", True), ("rng", True), ("hash_seed", True),
        ("seeds", True), ("rng_pool", True), ("seedling", False),
        ("arranged", False), ("width", False),
    ])
    def test_seed_name_convention(self, name, expected):
        assert is_seed_name(name) is expected

    def test_constant_is_never_rooted(self):
        env = SeedTaint(frozenset())
        assert not env.rooted(self._expr("1234"))

    def test_seedish_attribute_is_rooted(self):
        env = SeedTaint(frozenset())
        assert env.rooted(self._expr("scenario.seed"))
        assert env.rooted(self._expr("scenario.seed * 7919 + 1"))

    def test_string_key_subscript_is_rooted(self):
        env = SeedTaint(frozenset())
        assert env.rooted(self._expr("manifest['hash_seed']"))
        assert not env.rooted(self._expr("manifest['width']"))

    def test_assignment_chain_taints_local(self):
        env = self._env(
            "def f(scenario):\n"
            "    derived = scenario.seed + 3\n"
            "    doubled = derived * 2\n"
            "    return doubled\n")
        assert env.rooted(self._expr("doubled"))

    def test_untainted_local_is_not_rooted(self):
        env = self._env(
            "def f(scenario):\n"
            "    width = 64\n"
            "    return width\n")
        assert not env.rooted(self._expr("width"))

    def test_closure_inherits_enclosing_taint(self):
        tree = ast.parse(
            "def outer(scenario):\n"
            "    derived = scenario.seed + 1\n"
            "    def inner():\n"
            "        return default_rng(derived)\n"
            "    return inner\n")
        rooted_calls = [
            env.rooted(call.args[0])
            for env, call in iter_scoped_calls(tree)
            if getattr(call.func, "id", None) == "default_rng"]
        assert rooted_calls == [True]

    def test_each_call_yielded_exactly_once(self):
        # Calls inside loop/if bodies must not be visited twice.
        tree = ast.parse(
            "def f(items):\n"
            "    for item in items:\n"
            "        if item:\n"
            "            probe(item)\n")
        calls = [call for _, call in iter_scoped_calls(tree)
                 if getattr(call.func, "id", None) == "probe"]
        assert len(calls) == 1
