"""Tests for the region partitioner behind the sharded control plane.

Small cases run on the conftest line topology; determinism and shape
properties run on tinet (the smallest evaluation topology).
"""

from __future__ import annotations

import pytest

from repro.experiments.common import setup_topology
from repro.topology import partition_topology


@pytest.fixture(scope="module")
def tinet():
    return setup_topology("tinet", dc_capacity_factor=1.0)


@pytest.fixture(scope="module")
def tinet_partition(tinet):
    return partition_topology(tinet.topology, tinet.classes, 3,
                              seed=0, dc_node=tinet.state.dc_node)


class TestShape:
    def test_total_and_disjoint(self, tinet, tinet_partition):
        part = tinet_partition
        dc = tinet.state.dc_node
        claimed = [node for region in part.regions
                   for node in region.nodes]
        assert len(claimed) == len(set(claimed))
        assert set(claimed) == {n for n in tinet.topology.nodes
                                if n != dc}
        assert dc not in part.node_region
        assert set(part.node_region) == set(claimed)

    def test_every_class_assigned(self, tinet, tinet_partition):
        part = tinet_partition
        names = {cls.name for cls in tinet.classes}
        assert set(part.class_region) == names
        for region in part.regions:
            for cls_name in region.class_names:
                assert part.region_of_class(cls_name) == region.name

    def test_regions_are_contiguous(self, tinet, tinet_partition):
        topology = tinet.topology
        for region in tinet_partition.regions:
            nodes = region.node_set
            seen = {region.nodes[0]}
            frontier = [region.nodes[0]]
            while frontier:
                node = frontier.pop()
                for neighbor in topology.neighbors(node):
                    if neighbor in nodes and neighbor not in seen:
                        seen.add(neighbor)
                        frontier.append(neighbor)
            assert seen == nodes, f"{region.name} is disconnected"

    def test_majority_class_ownership(self, tinet, tinet_partition):
        part = tinet_partition
        for cls in tinet.classes:
            hops = {}
            for node in cls.path:
                owner = part.node_region.get(node)
                if owner is not None:
                    hops[owner] = hops.get(owner, 0) + 1
            assert hops[part.region_of_class(cls.name)] == \
                max(hops.values())

    def test_deterministic(self, tinet, tinet_partition):
        again = partition_topology(tinet.topology, tinet.classes, 3,
                                   seed=0,
                                   dc_node=tinet.state.dc_node)
        assert again.node_region == tinet_partition.node_region
        assert again.class_region == tinet_partition.class_region
        assert again.regions == tinet_partition.regions

    def test_adjacency_is_symmetric(self, tinet_partition):
        adjacency = tinet_partition.adjacency
        for name, neighbors in adjacency.items():
            for neighbor in neighbors:
                assert name in adjacency[neighbor]

    def test_summary_counts(self, tinet, tinet_partition):
        summary = tinet_partition.summary()
        assert sum(entry["classes"] for entry in summary.values()) \
            == len(tinet.classes)


class TestValidation:
    def test_bad_region_count(self, line_topology, line_classes):
        with pytest.raises(ValueError):
            partition_topology(line_topology, line_classes, 0)
        with pytest.raises(ValueError):
            partition_topology(line_topology, line_classes, 5)

    def test_negative_seed(self, line_topology, line_classes):
        with pytest.raises(ValueError):
            partition_topology(line_topology, line_classes, 2,
                               seed=-1)

    def test_unknown_region_lookup(self, line_topology, line_classes):
        part = partition_topology(line_topology, line_classes, 2)
        with pytest.raises(KeyError):
            part.region("region-9")


class TestFailoverOps:
    def test_adopter_is_lightest_neighbor(self, tinet_partition):
        part = tinet_partition
        for region in part.regions:
            adopter = part.adopter_for(region.name)
            assert adopter != region.name
            neighbors = part.adjacency.get(region.name, ())
            if neighbors:
                assert adopter in neighbors
                lightest = min(neighbors,
                               key=lambda n: (part.region(n).traffic,
                                              n))
                assert adopter == lightest

    def test_merge_preserves_totals(self, tinet, tinet_partition):
        part = tinet_partition
        dead = part.regions[0].name
        adopter = part.adopter_for(dead)
        merged = part.merge(dead, adopter)
        assert len(merged.regions) == len(part.regions) - 1
        assert dead not in merged.region_names()
        all_nodes = {node for region in merged.regions
                     for node in region.nodes}
        assert all_nodes == set(part.node_region)
        assert set(merged.class_region) == set(part.class_region)
        for cls_name, owner in part.class_region.items():
            expected = adopter if owner == dead else owner
            assert merged.region_of_class(cls_name) == expected
        assert dead not in merged.adjacency
        for neighbors in merged.adjacency.values():
            assert dead not in neighbors

    def test_merge_into_self_rejected(self, line_topology,
                                      line_classes):
        part = partition_topology(line_topology, line_classes, 2)
        with pytest.raises(ValueError):
            part.merge("region-0", "region-0")
