"""End-to-end integration scenarios on the real Internet2 topology.

Each test exercises the full pipeline the paper deploys: traffic ->
calibration -> LP -> shim configs -> trace emulation -> detection,
cross-validating the LP predictions against emulated behavior.
"""

import numpy as np
import pytest

from repro.core import (
    AggregationProblem,
    MirrorPolicy,
    NetworkState,
    ReplicationProblem,
    SplitTrafficProblem,
    validate_replication,
    validate_split,
)
from repro.experiments.common import asymmetric_classes, setup_topology
from repro.shim import (
    build_aggregation_configs,
    build_replication_configs,
    build_split_configs,
)
from repro.simulation import Emulation, Supernode, TraceGenerator
from repro.simulation.tracegen import TraceSpec
from repro.topology import AsymmetricRoutingModel


@pytest.fixture(scope="module")
def internet2_dc():
    setup = setup_topology("internet2", dc_capacity_factor=10.0)
    return setup


class TestReplicationPipeline:
    def test_lp_to_emulation(self, internet2_dc):
        state = internet2_dc.state
        result = ReplicationProblem(
            state, mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=0.4).solve()
        assert validate_replication(state, result) == []

        configs = build_replication_configs(state, result)
        generator = TraceGenerator(
            state.topology.nodes, state.classes,
            spec=TraceSpec(total_sessions=2500), seed=21)
        sessions = generator.generate(with_payloads=True)
        emulation = Emulation(state, configs, generator.classifier)
        report = emulation.run_signature(sessions)

        # Every session analyzed somewhere, exactly once.
        assert sum(report.sessions_processed.values()) == len(sessions)
        # Replication happened and traversed the DC anchor link.
        assert report.replicated_bytes > 0
        # Emulated link bytes stay under the LP's link budget.
        for link, volume in report.link_replicated_bytes.items():
            lp_extra = (result.link_loads[link] -
                        state.bg_load(link))
            if lp_extra <= 1e-9:
                continue
            emulated_extra = volume / (
                sum(s.total_bytes for s in sessions))
            # Same order of magnitude as LP fraction of bytes.
            lp_fraction = lp_extra * state.link_capacity[link] / sum(
                cls.total_bytes for cls in state.classes)
            assert emulated_extra == pytest.approx(lp_fraction,
                                                   abs=0.1)

    def test_supernode_stream_consistency(self, internet2_dc):
        """Replaying in supernode time-order changes nothing about
        which node handles each session (decisions are per-hash, not
        per-arrival-order)."""
        state = internet2_dc.state
        result = ReplicationProblem(
            state, mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=0.4).solve()
        configs = build_replication_configs(state, result)
        generator = TraceGenerator(
            state.topology.nodes, state.classes,
            spec=TraceSpec(total_sessions=600), seed=22)
        sessions = generator.generate(with_payloads=False)

        emulation = Emulation(state, configs, generator.classifier)
        direct = emulation.run_signature(sessions)

        schedule = Supernode(seed=5).schedule(sessions)
        ordered_sessions = []
        seen = set()
        for sp in schedule:
            if id(sp.session) not in seen:
                seen.add(id(sp.session))
                ordered_sessions.append(sp.session)
        emulation2 = Emulation(state, configs, generator.classifier)
        streamed = emulation2.run_signature(ordered_sessions)
        assert streamed.sessions_processed == direct.sessions_processed


class TestSplitPipeline:
    def test_asymmetric_lp_vs_emulation(self, internet2_dc):
        setup = setup_topology("internet2")
        model = AsymmetricRoutingModel(setup.topology, setup.routing)
        classes = asymmetric_classes(setup, model, 0.2,
                                     np.random.default_rng(3))
        state = NetworkState.calibrated(setup.topology, classes,
                                        dc_capacity_factor=10.0)
        lp = SplitTrafficProblem(state, max_link_load=0.4).solve()
        assert validate_split(state, lp) == []

        configs = build_split_configs(state, lp)
        generator = TraceGenerator(
            state.topology.nodes, classes,
            spec=TraceSpec(total_sessions=2000), seed=23)
        sessions = generator.generate(with_payloads=False)
        emulation = Emulation(state, configs, generator.classifier)
        report = emulation.run_stateful(sessions)
        assert report.miss_rate == pytest.approx(lp.miss_rate,
                                                 abs=0.05)


class TestScanPipeline:
    def test_distributed_scan_over_epochs(self, internet2_dc):
        setup = setup_topology("internet2")
        state = setup.state
        lp = AggregationProblem(state, beta=0.0).solve()
        configs = build_aggregation_configs(state, lp)
        spec = TraceSpec(total_sessions=1500, scanner_count=4,
                         scanner_fanout=45)
        generator = TraceGenerator(state.topology.nodes, state.classes,
                                   spec=spec, seed=24)
        sessions = generator.generate(with_payloads=False)
        emulation = Emulation(state, configs, generator.classifier)

        supernode = Supernode(duration=60.0, seed=6)
        epochs = supernode.epochs(sessions, epoch_seconds=20.0)
        reports = emulation.run_scan_epochs(epochs, threshold=12)
        assert len(reports) == 3
        for report in reports:
            assert report.semantically_equivalent
        # The burst scanners exceed the threshold in at least one epoch.
        flagged = {src for report in reports
                   for alerts in report.distributed_alerts.values()
                   for src in alerts}
        assert len(flagged) >= 1
