"""Shared fixtures: small hand-analyzable networks and traffic."""

from __future__ import annotations

import pytest

from repro.core.inputs import NetworkState
from repro.topology.routing import shortest_path_routing
from repro.topology.topology import Topology
from repro.traffic.classes import TrafficClass


@pytest.fixture
def line_topology() -> Topology:
    """A -- B -- C -- D chain (paths are unique and obvious)."""
    return Topology(
        "line", ["A", "B", "C", "D"],
        [("A", "B"), ("B", "C"), ("C", "D")],
        populations={"A": 4.0, "B": 1.0, "C": 1.0, "D": 2.0})


@pytest.fixture
def diamond_topology() -> Topology:
    """A diamond: A-B-D and A-C-D, plus B-C. Multiple shortest paths."""
    return Topology(
        "diamond", ["A", "B", "C", "D"],
        [("A", "B"), ("A", "C"), ("B", "D"), ("C", "D"), ("B", "C")],
        populations={"A": 2.0, "B": 1.0, "C": 1.0, "D": 2.0})


@pytest.fixture
def line_classes(line_topology) -> list:
    """Two classes on the chain: A->D (full path) and B->C."""
    routing = shortest_path_routing(line_topology)
    return [
        TrafficClass(name="A->D", source="A", target="D",
                     path=routing.path("A", "D"),
                     num_sessions=1000.0, session_bytes=10_000.0),
        TrafficClass(name="B->C", source="B", target="C",
                     path=routing.path("B", "C"),
                     num_sessions=500.0, session_bytes=10_000.0),
    ]


@pytest.fixture
def line_state(line_topology, line_classes) -> NetworkState:
    """Calibrated state without a datacenter."""
    return NetworkState.calibrated(line_topology, line_classes)


@pytest.fixture
def line_state_dc(line_topology, line_classes) -> NetworkState:
    """Calibrated state with a 10x datacenter."""
    return NetworkState.calibrated(line_topology, line_classes,
                                   dc_capacity_factor=10.0)
