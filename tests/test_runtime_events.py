"""Unit tests for the discrete-event core (clock, queue, loop)."""

import pytest

from repro.runtime.events import EventLoop, EventQueue, SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advances_forward(self):
        clock = SimClock()
        clock.advance_to(5.0)
        assert clock.now == 5.0

    def test_rejects_backwards(self):
        clock = SimClock(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(3.0)

    def test_same_instant_ok(self):
        clock = SimClock(4.0)
        clock.advance_to(4.0)
        assert clock.now == 4.0


class TestEventQueue:
    def test_pop_order_is_time_then_insertion(self):
        queue = EventQueue()
        order = []
        queue.push(2.0, lambda: order.append("late"))
        queue.push(1.0, lambda: order.append("first"))
        queue.push(1.0, lambda: order.append("second"))
        while (event := queue.pop()) is not None:
            event.action()
        assert order == ["first", "second", "late"]

    def test_cancelled_events_skipped(self):
        queue = EventQueue()
        fired = []
        event = queue.push(1.0, lambda: fired.append("a"))
        queue.push(2.0, lambda: fired.append("b"))
        event.cancel()
        assert len(queue) == 1
        assert queue.peek_time() == 2.0
        queue.pop().action()
        assert fired == ["b"]

    def test_peek_empty(self):
        assert EventQueue().peek_time() is None


class TestEventLoop:
    def test_run_until_fires_in_order_and_advances_clock(self):
        loop = EventLoop()
        seen = []
        loop.schedule_at(3.0, lambda: seen.append(("a", loop.now)))
        loop.schedule_at(1.0, lambda: seen.append(("b", loop.now)))
        fired = loop.run_until(5.0)
        assert fired == 2
        assert seen == [("b", 1.0), ("a", 3.0)]
        assert loop.now == 5.0

    def test_run_until_leaves_future_events(self):
        loop = EventLoop()
        seen = []
        loop.schedule_at(10.0, lambda: seen.append("late"))
        assert loop.run_until(5.0) == 0
        assert seen == []
        assert loop.queue.peek_time() == 10.0

    def test_actions_can_schedule_actions(self):
        loop = EventLoop()
        seen = []

        def chain():
            seen.append(loop.now)
            if loop.now < 3.0:
                loop.schedule_in(1.0, chain)

        loop.schedule_at(1.0, chain)
        loop.run_until(10.0)
        assert seen == [1.0, 2.0, 3.0]

    def test_schedule_in_past_rejected(self):
        loop = EventLoop(start=5.0)
        with pytest.raises(ValueError):
            loop.schedule_at(1.0, lambda: None)
        with pytest.raises(ValueError):
            loop.schedule_in(-1.0, lambda: None)

    def test_run_all_guard(self):
        loop = EventLoop()

        def forever():
            loop.schedule_in(1.0, forever)

        loop.schedule_in(1.0, forever)
        with pytest.raises(RuntimeError):
            loop.run_all(max_events=100)

    def test_deterministic_replay(self):
        """Two loops fed the same schedule fire identically."""

        def run():
            loop = EventLoop()
            trace = []
            for i in range(20):
                t = (i * 7) % 5 + 0.5
                loop.schedule_at(t, lambda i=i: trace.append(
                    (loop.now, i)))
            loop.run_until(10.0)
            return trace

        assert run() == run()
