"""Unit tests for the discrete-event core (clock, queue, loop)."""

import pytest

from repro.runtime.events import (
    EventLoop,
    EventQueue,
    PerturbedEventLoop,
    PerturbedEventQueue,
    SimClock,
)


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advances_forward(self):
        clock = SimClock()
        clock.advance_to(5.0)
        assert clock.now == 5.0

    def test_rejects_backwards(self):
        clock = SimClock(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(3.0)

    def test_same_instant_ok(self):
        clock = SimClock(4.0)
        clock.advance_to(4.0)
        assert clock.now == 4.0


class TestEventQueue:
    def test_pop_order_is_time_then_insertion(self):
        queue = EventQueue()
        order = []
        queue.push(2.0, lambda: order.append("late"))
        queue.push(1.0, lambda: order.append("first"))
        queue.push(1.0, lambda: order.append("second"))
        while (event := queue.pop()) is not None:
            event.action()
        assert order == ["first", "second", "late"]

    def test_cancelled_events_skipped(self):
        queue = EventQueue()
        fired = []
        event = queue.push(1.0, lambda: fired.append("a"))
        queue.push(2.0, lambda: fired.append("b"))
        event.cancel()
        assert len(queue) == 1
        assert queue.peek_time() == 2.0
        queue.pop().action()
        assert fired == ["b"]

    def test_peek_empty(self):
        assert EventQueue().peek_time() is None

    def test_len_excludes_cancelled_events(self):
        # Regression: cancelled events used to stay in the count
        # until their heap entry was popped.
        queue = EventQueue()
        events = [queue.push(float(i), lambda: None)
                  for i in range(4)]
        assert len(queue) == 4
        events[1].cancel()
        events[3].cancel()
        assert len(queue) == 2
        events[1].cancel()  # double-cancel must not double-decrement
        assert len(queue) == 2
        assert queue.pop() is events[0]
        assert len(queue) == 1

    def test_peek_time_skips_leading_cancelled_run(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        second = queue.push(1.5, lambda: None)
        queue.push(3.0, lambda: None)
        first.cancel()
        second.cancel()
        assert queue.peek_time() == 3.0
        assert len(queue) == 1

    def test_all_cancelled_is_empty(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        event.cancel()
        assert len(queue) == 0
        assert queue.peek_time() is None
        assert queue.pop() is None


def _drain_labels(queue):
    order = []
    while (event := queue.pop()) is not None:
        order.append(event.action())
    return order


class TestPerturbedEventQueue:
    def _fill(self, queue):
        for label in "abcdefgh":
            queue.push(1.0, lambda label=label: label)
        return queue

    def test_some_seed_permutes_same_instant_events(self):
        baseline = _drain_labels(self._fill(EventQueue()))
        assert baseline == list("abcdefgh")
        permuted = [
            _drain_labels(self._fill(PerturbedEventQueue(seed)))
            for seed in range(1, 6)]
        assert any(order != baseline for order in permuted)
        assert all(sorted(order) == sorted(baseline)
                   for order in permuted)

    def test_same_seed_reproduces_order(self):
        runs = [_drain_labels(self._fill(PerturbedEventQueue(11)))
                for _ in range(2)]
        assert runs[0] == runs[1]

    def test_distinct_times_keep_time_order(self):
        queue = PerturbedEventQueue(3)
        queue.push(2.0, lambda: "late")
        queue.push(1.0, lambda: "early")
        assert _drain_labels(queue) == ["early", "late"]

    def test_perturbed_loop_exposes_seed(self):
        loop = PerturbedEventLoop(17)
        assert loop.perturb_seed == 17
        assert isinstance(loop.queue, PerturbedEventQueue)


class TestEventLoop:
    def test_run_until_fires_in_order_and_advances_clock(self):
        loop = EventLoop()
        seen = []
        loop.schedule_at(3.0, lambda: seen.append(("a", loop.now)))
        loop.schedule_at(1.0, lambda: seen.append(("b", loop.now)))
        fired = loop.run_until(5.0)
        assert fired == 2
        assert seen == [("b", 1.0), ("a", 3.0)]
        assert loop.now == 5.0

    def test_run_until_leaves_future_events(self):
        loop = EventLoop()
        seen = []
        loop.schedule_at(10.0, lambda: seen.append("late"))
        assert loop.run_until(5.0) == 0
        assert seen == []
        assert loop.queue.peek_time() == 10.0

    def test_actions_can_schedule_actions(self):
        loop = EventLoop()
        seen = []

        def chain():
            seen.append(loop.now)
            if loop.now < 3.0:
                loop.schedule_in(1.0, chain)

        loop.schedule_at(1.0, chain)
        loop.run_until(10.0)
        assert seen == [1.0, 2.0, 3.0]

    def test_schedule_in_past_rejected(self):
        loop = EventLoop(start=5.0)
        with pytest.raises(ValueError):
            loop.schedule_at(1.0, lambda: None)
        with pytest.raises(ValueError):
            loop.schedule_in(-1.0, lambda: None)

    def test_run_all_guard(self):
        loop = EventLoop()

        def forever():
            loop.schedule_in(1.0, forever)

        loop.schedule_in(1.0, forever)
        with pytest.raises(RuntimeError):
            loop.run_all(max_events=100)

    def test_deterministic_replay(self):
        """Two loops fed the same schedule fire identically."""

        def run():
            loop = EventLoop()
            trace = []
            for i in range(20):
                t = (i * 7) % 5 + 0.5
                loop.schedule_at(t, lambda i=i: trace.append(
                    (loop.now, i)))
            loop.run_until(10.0)
            return trace

        assert run() == run()
