"""Property test: duals are d(objective)/d(rhs), in model convention.

``Solution.dual(name)`` must report the shadow price of a constraint
*as the user wrote it* — the rate of change of the optimal objective
per unit increase of the constraint's right-hand side — regardless of
objective sense (min/max) and constraint sense (LE/GE/EQ), and under
either backend. The compiled form negates GE rows and maximize
objectives, so this pins down the sign mapping end to end.

Each case is verified against a central finite difference of the
optimum over an rhs perturbation. The instances are built nondegenerate
(distinct cost coefficients, rhs away from bound kinks) so the dual is
unique and the finite difference is exact for an LP.
"""

import pytest

from repro.lpsolve import Model

BACKENDS = ("scipy", "dense")
EPS = 1e-3


def _build(sense, con_sense, rhs, backend):
    """min/max c.x with one coupling constraint at the given rhs.

    Costs are deliberately asymmetric (1.3 vs 2.7) so the optimal
    basis is unique; the bounds are wide enough that the +/-EPS
    perturbations never cross a kink.
    """
    m = Model(backend=backend)
    x = m.add_variable("x", lb=0.0, ub=10.0)
    y = m.add_variable("y", lb=0.0, ub=10.0)
    lhs = x + y
    if con_sense == "le":
        m.add_constraint(lhs <= rhs, name="coupling")
    elif con_sense == "ge":
        m.add_constraint(lhs >= rhs, name="coupling")
    else:
        m.add_constraint(lhs == rhs, name="coupling")
    objective = 1.3 * x + 2.7 * y
    if sense == "min":
        m.minimize(objective)
    else:
        m.maximize(objective)
    return m


def _optimum(sense, con_sense, rhs, backend):
    return _build(sense, con_sense, rhs, backend).solve().objective_value


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("sense", ("min", "max"))
@pytest.mark.parametrize("con_sense", ("le", "ge", "eq"))
@pytest.mark.parametrize("rhs", (3.0, 7.5, 12.5))
def test_dual_is_objective_sensitivity(backend, sense, con_sense, rhs):
    solution = _build(sense, con_sense, rhs, backend).solve()
    reported = solution.dual("coupling")
    plus = _optimum(sense, con_sense, rhs + EPS, backend)
    minus = _optimum(sense, con_sense, rhs - EPS, backend)
    finite_difference = (plus - minus) / (2 * EPS)
    assert reported == pytest.approx(finite_difference, abs=1e-6)


@pytest.mark.parametrize("backend", BACKENDS)
def test_nonbinding_constraint_has_zero_dual(backend):
    m = Model(backend=backend)
    x = m.add_variable("x", lb=0.0, ub=10.0)
    m.add_constraint(x <= 100.0, name="slack_room")
    m.minimize(x)
    solution = m.solve()
    assert solution.dual("slack_room") == pytest.approx(0.0, abs=1e-9)
    assert "slack_room" not in solution.binding_constraints()


@pytest.mark.parametrize("backend", BACKENDS)
def test_binding_constraints_listed(backend):
    m = Model(backend=backend)
    x = m.add_variable("x", lb=0.0, ub=10.0)
    y = m.add_variable("y", lb=0.0, ub=10.0)
    m.add_constraint(x + y >= 4.0, name="demand")
    m.minimize(1.3 * x + 2.7 * y)
    solution = m.solve()
    assert "demand" in solution.binding_constraints()
    # Cheapest variable serves the demand: dual = its unit cost.
    assert solution.dual("demand") == pytest.approx(1.3, abs=1e-6)
