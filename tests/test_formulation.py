"""Formulation-layer behavior: idempotent builds, named parameters,
compile-cache metrics, and the structure-change fallback."""

from dataclasses import replace

import pytest

from repro.core.aggregation import AggregationProblem
from repro.core.formulation import Formulation
from repro.core.mirrors import MirrorPolicy
from repro.core.replication import ReplicationProblem
from repro.obs import MetricsRegistry, use_registry


def _replication(state, **kwargs):
    kwargs.setdefault("mirror_policy", MirrorPolicy.datacenter())
    return ReplicationProblem(state, **kwargs)


class TestBuildIdempotence:
    def test_build_model_returns_same_model(self, line_state_dc):
        problem = _replication(line_state_dc)
        first = problem.build_model()
        second = problem.build_model()
        assert first is second

    def test_rebuild_after_invalidate_has_no_suffixed_names(
            self, line_state_dc):
        # Rebuilding must not hit the model's duplicate-name
        # deduplication ("p[...]#1"): each build starts clean.
        problem = _replication(line_state_dc)
        problem.build_model()
        problem.invalidate()
        model = problem.build_model()
        names = [var.name for var in model.variables]
        assert not any("#" in name for name in names)
        assert len(names) == len(set(names))

    def test_repeated_solves_are_stable(self, line_state_dc):
        problem = _replication(line_state_dc)
        first = problem.solve()
        second = problem.solve()
        assert second.load_cost == pytest.approx(first.load_cost,
                                                 abs=1e-12)


class TestParameters:
    def test_param_names_cover_declared_knobs(self, line_state_dc):
        problem = _replication(line_state_dc)
        assert set(problem.param_names) == {"max_link_load", "volumes"}
        agg = AggregationProblem(line_state_dc)
        assert set(agg.param_names) == {"beta", "volumes"}

    def test_volumes_reflect_state(self, line_state_dc):
        problem = _replication(line_state_dc)
        expected = {cls.name: cls.num_sessions
                    for cls in line_state_dc.classes}
        assert problem.volumes == expected

    def test_resolve_rejects_unknown_param(self, line_state_dc):
        problem = _replication(line_state_dc)
        with pytest.raises(ValueError, match="unknown parameter"):
            problem.resolve(gamma=1.0)

    def test_max_link_load_validated(self, line_state_dc):
        problem = _replication(line_state_dc)
        with pytest.raises(ValueError):
            problem.resolve(max_link_load=-0.1)
        with pytest.raises(ValueError):
            problem.resolve(max_link_load=1.5)

    def test_beta_validated(self, line_state_dc):
        problem = AggregationProblem(line_state_dc)
        with pytest.raises(ValueError):
            problem.resolve(beta=-1.0)

    def test_volumes_require_exact_class_coverage(self, line_state_dc):
        problem = _replication(line_state_dc)
        with pytest.raises(ValueError):
            problem.resolve(volumes={"A->D": 1000.0})  # missing B->C
        with pytest.raises(ValueError):
            problem.resolve(volumes={"A->D": 1000.0, "B->C": 500.0,
                                     "ghost": 1.0})
        with pytest.raises(ValueError):
            problem.resolve(volumes={"A->D": -1.0, "B->C": 500.0})


class TestCompileCacheMetrics:
    def test_cold_then_warm_counters(self, line_state_dc):
        with use_registry(MetricsRegistry()) as reg:
            problem = _replication(line_state_dc)
            problem.solve()
            assert reg.counter_value("lp.compile_cache.misses") == 1
            assert reg.counter_value("lp.compile_cache.hits") == 0

            problem.resolve(max_link_load=0.2)
            assert reg.counter_value("lp.compile_cache.misses") == 1
            assert reg.counter_value("lp.compile_cache.hits") == 1
            assert reg.counter_value("lp.resolves") == 1
            assert reg.histogram("lp.resolve.seconds") is not None

    def test_structure_change_recompiles(self, line_state_dc):
        with use_registry(MetricsRegistry()) as reg:
            problem = _replication(line_state_dc)
            problem.solve()
            problem.invalidate()
            problem.solve()
            assert reg.counter_value("lp.compile_cache.misses") == 2

    def test_build_span_recorded(self, line_state_dc):
        with use_registry(MetricsRegistry()) as reg:
            _replication(line_state_dc).solve()
            assert reg.histogram("lp.build.seconds") is not None
            assert reg.histogram("lp.solve.seconds") is not None


class TestStructureFallback:
    def test_volume_zero_to_nonzero_matches_cold(self, line_state_dc):
        # A zero-volume class contributes no compiled coefficients;
        # raising it back up is a *structure* change and must fall
        # back to a rebuild transparently (same answer as cold).
        zeroed = [replace(cls, num_sessions=0.0)
                  if cls.name == "B->C" else cls
                  for cls in line_state_dc.classes]
        problem = _replication(line_state_dc.with_traffic(zeroed))
        problem.solve()

        restored = {cls.name: cls.num_sessions
                    for cls in line_state_dc.classes}
        warm = problem.resolve(volumes=restored)
        cold = _replication(line_state_dc).solve()
        assert warm.load_cost == pytest.approx(cold.load_cost,
                                               abs=1e-9)

    def test_incompatible_traffic_rebuilds(self, line_state_dc,
                                           line_topology):
        # Changing anything but num_sessions (here: session bytes)
        # is not volume-patchable; resolve_traffic must rebuild.
        heavier = [replace(cls, session_bytes=cls.session_bytes * 2)
                   for cls in line_state_dc.classes]
        problem = _replication(line_state_dc)
        problem.solve()
        warm = problem.resolve_traffic(heavier)
        cold = _replication(
            line_state_dc.with_traffic(heavier)).solve()
        assert warm.load_cost == pytest.approx(cold.load_cost,
                                               abs=1e-9)

    def test_formulation_is_shared_base(self, line_state_dc):
        assert isinstance(_replication(line_state_dc), Formulation)
        assert isinstance(AggregationProblem(line_state_dc),
                          Formulation)
