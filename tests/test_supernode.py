"""Unit tests for the supernode packet scheduler (Section 8.1)."""

import pytest

from repro.shim import FiveTuple
from repro.simulation import (
    Session,
    Supernode,
    validate_in_session_order,
)


def make_sessions(count, packets_per_session=4):
    sessions = []
    for i in range(count):
        session = Session(FiveTuple(6, 100 + i, 1000, 200 + i, 80),
                          "c", ("A", "B"))
        for p in range(packets_per_session):
            direction = "fwd" if p % 2 == 0 else "rev"
            session.add_packet(direction, 100)
        sessions.append(session)
    return sessions


class TestSchedule:
    def test_all_packets_scheduled(self):
        sessions = make_sessions(20, packets_per_session=5)
        schedule = Supernode(seed=1).schedule(sessions)
        assert len(schedule) == 100

    def test_globally_time_ordered(self):
        schedule = Supernode(seed=2).schedule(make_sessions(30))
        times = [sp.time for sp in schedule]
        assert times == sorted(times)

    def test_in_session_order_preserved(self):
        schedule = Supernode(seed=3).schedule(make_sessions(50))
        assert validate_in_session_order(schedule)

    def test_sessions_interleave(self):
        """Distinct sessions' packets mix in the global stream (the
        point of realistic injection vs session-at-a-time replay)."""
        schedule = Supernode(duration=1.0, mean_packet_gap=0.5,
                             seed=4).schedule(make_sessions(20))
        owners = [id(sp.session) for sp in schedule]
        switches = sum(1 for a, b in zip(owners, owners[1:])
                       if a != b)
        assert switches > len(set(owners))  # more than one run each

    def test_ingress_matches_direction(self):
        schedule = Supernode(seed=5).schedule(make_sessions(5))
        for sp in schedule:
            expected = sp.session.observers(sp.packet.direction)[0]
            assert sp.ingress == expected

    def test_deterministic(self):
        sessions = make_sessions(10)
        a = Supernode(seed=6).schedule(sessions)
        b = Supernode(seed=6).schedule(sessions)
        assert [(sp.time, id(sp.packet)) for sp in a] == \
            [(sp.time, id(sp.packet)) for sp in b]

    def test_validation_rejects_bad_order(self):
        sessions = make_sessions(1, packets_per_session=3)
        schedule = Supernode(seed=7).schedule(sessions)
        swapped = [schedule[1], schedule[0]] + schedule[2:]
        assert not validate_in_session_order(swapped)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            Supernode(duration=0.0)
        with pytest.raises(ValueError):
            Supernode(mean_packet_gap=0.0)


class TestEpochSlicing:
    def test_every_session_in_exactly_one_epoch(self):
        sessions = make_sessions(40)
        batches = Supernode(duration=60.0, seed=8).epochs(
            sessions, epoch_seconds=15.0)
        assert len(batches) == 4
        total = sum(len(batch) for batch in batches)
        assert total == len(sessions)

    def test_epoch_attribution_by_first_packet(self):
        sessions = make_sessions(30)
        node = Supernode(duration=60.0, seed=9)
        batches = node.epochs(sessions, epoch_seconds=20.0)
        schedule = node.schedule(sessions)
        first_time = {}
        for sp in schedule:
            first_time.setdefault(id(sp.session), sp.time)
        for index, batch in enumerate(batches):
            for session in batch:
                time = first_time[id(session)]
                assert index * 20.0 <= time
                if index < len(batches) - 1:
                    assert time < (index + 1) * 20.0

    def test_bad_epoch_length(self):
        with pytest.raises(ValueError):
            Supernode().epochs(make_sessions(1), epoch_seconds=0.0)
