"""Zero-copy trace store: direct-synthesis parity, pack/open/replay
round trips, chunk-boundary edge cases, and corruption handling.

The store's contract is exactness, not approximation: ``generate_batch
(direct=True)`` must be bit-identical to the Session-materializing
oracle, and a chunked replay from the memmapped store must reproduce
the in-memory fast report field-for-field — including across the
canned scenarios' per-epoch trace recipe.
"""

import json

import numpy as np
import pytest

from repro.core import MirrorPolicy, ReplicationProblem
from repro.experiments.common import setup_topology
from repro.runtime import CANNED_SCENARIOS
from repro.shim import build_replication_configs
from repro.simulation import (
    ChunkedReplay,
    Emulation,
    TraceGenerator,
    TraceStore,
    TraceStoreError,
    trace_fingerprint,
)
from repro.simulation.tracegen import TraceSpec
from repro.simulation.tracestore import (
    _PACKET_COLUMNS,
    _SESSION_COLUMNS,
)

_SESSION_ARRAYS = tuple(c for c in _SESSION_COLUMNS)
_PACKET_ARRAYS = tuple(c for c in _PACKET_COLUMNS)


def _assert_batches_identical(left, right):
    """Every column bit-identical, dtypes included."""
    for name in _SESSION_ARRAYS:
        a = getattr(left.sessions, name)
        b = getattr(right.sessions, name)
        assert a.dtype == b.dtype, name
        assert np.array_equal(a, b), name
    for name in _PACKET_ARRAYS:
        a = getattr(left, name)
        b = getattr(right, name)
        assert a.dtype == b.dtype, name
        assert np.array_equal(a, b), name
    left_payload = left.payload_buffer
    right_payload = right.payload_buffer
    if not isinstance(left_payload, bytes):
        left_payload = left_payload.tobytes()
    if not isinstance(right_payload, bytes):
        right_payload = right_payload.tobytes()
    assert left_payload == right_payload
    assert left.sessions.num_keys == right.sessions.num_keys
    assert left.sessions.class_names == right.sessions.class_names
    assert left.sessions.node_order == right.sessions.node_order
    assert len(left.sessions.paths) == len(right.sessions.paths)
    for p, q in zip(left.sessions.paths, right.sessions.paths):
        assert np.array_equal(p, q)


@pytest.fixture(scope="module")
def tinet_state():
    return setup_topology("tinet", dc_capacity_factor=10.0).state


@pytest.fixture(scope="module")
def tinet_emulation(tinet_state):
    """A replication emulation plus the trace it replays."""
    generator = TraceGenerator(
        tinet_state.topology.nodes, tinet_state.classes,
        spec=TraceSpec(total_sessions=400, scanner_count=2,
                       scanner_fanout=15, payload_sigma=0.5),
        seed=23)
    batch = generator.generate_batch(tuple(tinet_state.nids_nodes),
                                     direct=True)
    result = ReplicationProblem(
        tinet_state, mirror_policy=MirrorPolicy.datacenter(),
        max_link_load=0.4).solve()
    configs = build_replication_configs(tinet_state, result)
    emulation = Emulation(tinet_state, configs, generator.classifier)
    return emulation, batch


class TestDirectSynthesisParity:
    """generate_batch(direct=True) vs the Session-materializing path."""

    @pytest.mark.parametrize("with_payloads", [True, False],
                             ids=["payloads", "headers-only"])
    def test_bit_identical_columns(self, tinet_state, with_payloads):
        node_order = tuple(tinet_state.nids_nodes)
        spec = TraceSpec(total_sessions=350, scanner_count=3,
                         scanner_fanout=12, payload_sigma=0.6)

        def build(direct):
            return TraceGenerator(
                tinet_state.topology.nodes, tinet_state.classes,
                spec=spec, seed=41).generate_batch(
                    node_order, with_payloads=with_payloads,
                    direct=direct)

        _assert_batches_identical(build(True), build(False))

    def test_fingerprint_matches_oracle(self, tinet_state):
        node_order = tuple(tinet_state.nids_nodes)

        def build(direct):
            return TraceGenerator(
                tinet_state.topology.nodes, tinet_state.classes,
                spec=TraceSpec(total_sessions=200),
                seed=5).generate_batch(node_order, direct=direct)

        assert trace_fingerprint(build(True)) == \
            trace_fingerprint(build(False))


class TestRoundTrip:
    """pack -> open -> replay reproduces the in-memory report."""

    def test_pack_open_is_bit_identical(self, tinet_emulation,
                                        tmp_path):
        _, batch = tinet_emulation
        store = TraceStore.pack(batch, tmp_path / "trace",
                                meta={"origin": "test"})
        assert store.fingerprint == trace_fingerprint(batch)
        assert store.num_sessions == batch.sessions.num_sessions
        assert store.num_packets == batch.num_packets
        assert store.verify()
        _assert_batches_identical(store.batch(), batch)

    def test_reopen_matches_pack(self, tinet_emulation, tmp_path):
        _, batch = tinet_emulation
        packed = TraceStore.pack(batch, tmp_path / "trace")
        reopened = TraceStore.open(tmp_path / "trace")
        assert reopened.fingerprint == packed.fingerprint
        assert reopened.manifest == packed.manifest
        _assert_batches_identical(reopened.batch(), batch)

    def test_chunked_replay_equals_fast_report(self, tinet_emulation,
                                               tmp_path):
        emulation, batch = tinet_emulation
        expected = emulation.run_signature(batch, fast=True)
        store = TraceStore.pack(batch, tmp_path / "trace")
        replay = ChunkedReplay(store.batch(), chunk_packets=97)
        assert replay.num_chunks > 1
        assert emulation.run_signature_chunked(replay) == expected

    @pytest.mark.parametrize("name", sorted(CANNED_SCENARIOS))
    def test_scenario_epoch_traces_round_trip(self, name, tmp_path):
        # The runtime scenarios' per-epoch trace recipe (epoch 0):
        # the store must round-trip whatever the scenario runner
        # would replay.
        scenario = CANNED_SCENARIOS[name]()
        state = setup_topology(scenario.topology).state
        generator = TraceGenerator(
            state.topology.nodes, state.classes,
            spec=TraceSpec(
                total_sessions=scenario.sessions_per_epoch),
            seed=scenario.seed * 100003)
        batch = generator.generate_batch(tuple(state.nids_nodes),
                                         direct=True)
        oracle = generator.generate_batch(tuple(state.nids_nodes),
                                          direct=False)
        _assert_batches_identical(batch, oracle)
        store = TraceStore.pack(batch, tmp_path / name,
                                meta={"scenario": name})
        assert store.verify()
        _assert_batches_identical(store.batch(), batch)


class TestChunkEdges:
    def _reports(self, emulation, batch, store, chunk):
        replay = ChunkedReplay(store.batch(), chunk_packets=chunk)
        return (emulation.run_signature_chunked(replay),
                emulation.run_signature(batch, fast=True))

    @pytest.mark.parametrize("chunk", [1, 13, 10**9],
                             ids=["one", "small", "whole-trace"])
    def test_chunk_sizes_are_equivalent(self, tinet_emulation,
                                        tmp_path, chunk):
        emulation, batch = tinet_emulation
        store = TraceStore.pack(batch, tmp_path / "trace")
        chunked, expected = self._reports(emulation, batch, store,
                                          chunk)
        assert chunked == expected

    def test_chunks_are_session_aligned(self, tinet_emulation,
                                        tmp_path):
        _, batch = tinet_emulation
        store = TraceStore.pack(batch, tmp_path / "trace")
        replay = ChunkedReplay(store.batch(), chunk_packets=7)
        sop = store.batch().session_of_packet
        covered = 0
        for start, end in replay.bounds:
            assert start == covered
            if end < len(sop):
                assert sop[end - 1] != sop[end], (
                    "chunk boundary split a session")
            covered = end
        assert covered == len(sop)

    def test_empty_trace(self, tinet_state, tmp_path):
        generator = TraceGenerator(
            tinet_state.topology.nodes, tinet_state.classes,
            spec=TraceSpec(total_sessions=0), seed=1)
        batch = generator.generate_batch(
            tuple(tinet_state.nids_nodes), direct=True)
        assert batch.num_packets == 0
        store = TraceStore.pack(batch, tmp_path / "empty")
        assert store.payload_bytes == 0
        assert store.verify()
        replay = ChunkedReplay(store.batch(), chunk_packets=64)
        assert replay.num_chunks == 0
        assert list(replay) == []

    def test_nonpositive_chunk_rejected(self, tinet_emulation):
        _, batch = tinet_emulation
        with pytest.raises(ValueError):
            ChunkedReplay(batch, chunk_packets=0)

    def test_unsorted_batch_rejected(self, tinet_emulation):
        _, batch = tinet_emulation
        from repro.simulation.batch import PacketBatch
        shuffled = PacketBatch(
            batch.sessions,
            np.asarray(batch.session_of_packet)[::-1].copy(),
            np.asarray(batch.direction).copy(),
            np.asarray(batch.size_bytes).copy(),
            b"", np.zeros(batch.num_packets + 1, dtype=np.int64))
        with pytest.raises(ValueError):
            ChunkedReplay(shuffled, chunk_packets=10)


class TestStoreErrors:
    def test_open_missing_store(self, tmp_path):
        with pytest.raises(TraceStoreError, match="missing"):
            TraceStore.open(tmp_path / "nope")

    def test_open_foreign_manifest(self, tmp_path):
        root = tmp_path / "bad"
        root.mkdir()
        (root / "manifest.json").write_text(
            json.dumps({"format": "something-else"}))
        with pytest.raises(TraceStoreError, match="not a"):
            TraceStore.open(root)

    def test_open_future_version(self, tinet_emulation, tmp_path):
        _, batch = tinet_emulation
        store = TraceStore.pack(batch, tmp_path / "trace")
        manifest = dict(store.manifest)
        manifest["version"] = 99
        (tmp_path / "trace" / "manifest.json").write_text(
            json.dumps(manifest))
        with pytest.raises(TraceStoreError, match="version"):
            TraceStore.open(tmp_path / "trace")

    def test_shape_mismatch_detected(self, tinet_emulation, tmp_path):
        _, batch = tinet_emulation
        TraceStore.pack(batch, tmp_path / "trace")
        truncated = np.asarray(batch.direction)[:-1].copy()
        np.save(tmp_path / "trace" / "direction.npy", truncated)
        with pytest.raises(TraceStoreError, match="direction"):
            TraceStore.open(tmp_path / "trace")

    def test_verify_catches_tampering(self, tinet_emulation,
                                      tmp_path):
        _, batch = tinet_emulation
        TraceStore.pack(batch, tmp_path / "trace")
        sizes = np.asarray(batch.size_bytes).copy()
        sizes[0] += 1.0
        np.save(tmp_path / "trace" / "size_bytes.npy", sizes)
        store = TraceStore.open(tmp_path / "trace")
        assert not store.verify()
