"""Tests for node agents, the lossy config channel, and rollout
strategies (overlap / two-phase / direct) with coverage accounting."""

import pytest

from repro.core import MirrorPolicy, ReplicationProblem
from repro.runtime.agents import (
    ConfigMessage,
    MessageKind,
    NodeAgent,
    build_agents,
)
from repro.runtime.events import EventLoop
from repro.runtime.rollout import (
    ChannelSpec,
    ConfigChannel,
    RolloutDriver,
    RolloutOutcome,
    coverage_report,
)
from repro.shim import build_replication_configs
from repro.shim.config import ShimConfig


@pytest.fixture
def two_configs(line_state_dc):
    old = ReplicationProblem(
        line_state_dc, mirror_policy=MirrorPolicy.none()).solve()
    new = ReplicationProblem(
        line_state_dc, mirror_policy=MirrorPolicy.datacenter(),
        max_link_load=0.4).solve()
    return (build_replication_configs(line_state_dc, old),
            build_replication_configs(line_state_dc, new))


@pytest.fixture
def agents(line_state_dc):
    return build_agents(line_state_dc.node_capacity)


class TestNodeAgent:
    def test_install_and_ack(self, two_configs, agents):
        old, _ = two_configs
        ack = agents["B"].deliver(ConfigMessage(
            MessageKind.INSTALL, 1, "B", old["B"]), now=1.0)
        assert ack.ok
        assert agents["B"].effective_config() is old["B"]

    def test_duplicate_delivery_idempotent(self, two_configs, agents):
        old, _ = two_configs
        msg = ConfigMessage(MessageKind.INSTALL, 1, "B", old["B"])
        agents["B"].deliver(msg, now=1.0)
        ack = agents["B"].deliver(msg, now=2.0)
        assert ack.ok
        assert agents["B"].installs == 1

    def test_dead_agent_acks_nothing(self, two_configs, agents):
        old, _ = two_configs
        agents["B"].fail()
        ack = agents["B"].deliver(ConfigMessage(
            MessageKind.INSTALL, 1, "B", old["B"]), now=1.0)
        assert ack is None
        assert agents["B"].effective_config() is None

    def test_overlap_then_retire(self, two_configs, agents):
        old, new = two_configs
        agent = agents["B"]
        agent.deliver(ConfigMessage(MessageKind.INSTALL, 1, "B",
                                    old["B"]), now=0.0)
        agent.deliver(ConfigMessage(MessageKind.OVERLAP_INSTALL, 2,
                                    "B", new["B"]), now=1.0)
        union = agent.effective_config()
        assert union.num_rules == (old["B"].num_rules +
                                   new["B"].num_rules)
        agent.deliver(ConfigMessage(MessageKind.RETIRE, 2, "B"),
                      now=2.0)
        assert agent.effective_config() is new["B"]

    def test_rule_capacity_refusal(self, two_configs):
        old, new = two_configs
        agent = NodeAgent("B", {"cpu": 1.0}, config=old["B"],
                          rule_capacity=old["B"].num_rules)
        ack = agent.deliver(ConfigMessage(
            MessageKind.OVERLAP_INSTALL, 2, "B", new["B"]), now=1.0)
        assert not ack.ok  # union would not fit
        assert agent.effective_config() is old["B"]

    def test_two_phase_stages_then_commits(self, two_configs, agents):
        _, new = two_configs
        agent = agents["B"]
        agent.deliver(ConfigMessage(MessageKind.PREPARE, 1, "B",
                                    new["B"]), now=0.0)
        assert agent.effective_config() is None  # not yet active
        agent.deliver(ConfigMessage(MessageKind.COMMIT, 1, "B"),
                      now=1.0)
        assert agent.effective_config() is new["B"]

    def test_abort_clears_staged(self, two_configs, agents):
        _, new = two_configs
        agent = agents["B"]
        agent.deliver(ConfigMessage(MessageKind.PREPARE, 1, "B",
                                    new["B"]), now=0.0)
        agent.deliver(ConfigMessage(MessageKind.ABORT, 1, "B"),
                      now=1.0)
        ack = agent.deliver(ConfigMessage(MessageKind.COMMIT, 2, "B"),
                            now=2.0)
        assert not ack.ok  # nothing staged anymore

    def test_wrong_node_rejected(self, two_configs, agents):
        old, _ = two_configs
        with pytest.raises(ValueError):
            agents["B"].deliver(ConfigMessage(
                MessageKind.INSTALL, 1, "C", old["C"]), now=0.0)


class TestConfigChannel:
    def test_delivery_latency(self, two_configs, agents):
        old, _ = two_configs
        loop = EventLoop()
        channel = ConfigChannel(ChannelSpec(base_delay=2.0), seed=1)
        acks = []
        channel.send(loop, agents["B"], ConfigMessage(
            MessageKind.INSTALL, 1, "B", old["B"]), acks.append)
        loop.run_until(10.0)
        assert len(acks) == 1
        assert acks[0].time == 2.0  # delivered after base_delay

    def test_loss_triggers_retransmit(self, two_configs, agents):
        old, _ = two_configs
        loop = EventLoop()
        channel = ConfigChannel(
            ChannelSpec(base_delay=1.0, loss=0.9,
                        retransmit_timeout=5.0, max_retries=200),
            seed=3)
        acks = []
        channel.send(loop, agents["B"], ConfigMessage(
            MessageKind.INSTALL, 1, "B", old["B"]), acks.append)
        loop.run_until(2000.0)
        assert len(acks) == 1  # eventually delivered
        assert channel.lost > 0
        assert channel.retransmits == channel.lost

    def test_dead_node_retried_until_recovery(self, two_configs,
                                              agents):
        old, _ = two_configs
        loop = EventLoop()
        channel = ConfigChannel(
            ChannelSpec(base_delay=1.0, retransmit_timeout=4.0),
            seed=0)
        agents["B"].fail()
        loop.schedule_at(10.0, agents["B"].recover)
        acks = []
        channel.send(loop, agents["B"], ConfigMessage(
            MessageKind.INSTALL, 1, "B", old["B"]), acks.append)
        loop.run_until(100.0)
        assert len(acks) == 1
        assert acks[0].time > 10.0

    def test_seeded_channel_is_deterministic(self, two_configs,
                                             line_state_dc):
        old, _ = two_configs

        def run():
            loop = EventLoop()
            agents = build_agents(line_state_dc.node_capacity)
            channel = ConfigChannel(
                ChannelSpec(base_delay=1.0, jitter=4.0, loss=0.3,
                            retransmit_timeout=3.0), seed=42)
            times = []
            for node in sorted(old):
                channel.send(loop, agents[node], ConfigMessage(
                    MessageKind.INSTALL, 1, node, old[node]),
                    lambda ack: times.append((ack.node, ack.time)))
            loop.run_until(500.0)
            return times

        assert run() == run()


def _drive(strategy, configs, agents, transition=None, spec=None,
           horizon=500.0):
    loop = EventLoop()
    channel = ConfigChannel(spec or ChannelSpec(base_delay=1.0),
                            seed=5)
    driver = RolloutDriver(channel, strategy)
    session = driver.start(loop, agents, configs, transition)
    loop.run_until(horizon)
    return session, loop


class TestRolloutDriver:
    def test_direct_completes(self, two_configs, agents):
        old, _ = two_configs
        session, _ = _drive("direct", old, agents)
        assert session.outcome is RolloutOutcome.COMPLETED
        assert session.latency is not None and session.latency > 0
        for node in old:
            assert agents[node].effective_config() is old[node]

    def test_overlap_without_transition_goes_direct(self, two_configs,
                                                    agents):
        old, _ = two_configs
        session, _ = _drive("overlap", old, agents, transition=None)
        assert session.strategy == "direct"
        assert session.outcome is RolloutOutcome.COMPLETED

    def test_overlap_retires_old_config(self, two_configs, agents):
        from repro.core import OverlapTransition

        old, new = two_configs
        for node in old:
            agents[node].deliver(ConfigMessage(
                MessageKind.INSTALL, 1, node, old[node]), now=0.0)
        session, _ = _drive("overlap", new, agents,
                            transition=OverlapTransition(old, new))
        assert session.outcome is RolloutOutcome.COMPLETED
        assert session.retired_at is not None
        for node in new:
            assert agents[node].effective_config() is new[node]

    def test_two_phase_commits_everywhere(self, two_configs, agents):
        _, new = two_configs
        session, _ = _drive("two-phase", new, agents)
        assert session.outcome is RolloutOutcome.COMPLETED
        for node in new:
            assert agents[node].effective_config() is new[node]

    def test_two_phase_one_no_vote_aborts_all(self, two_configs,
                                              line_state_dc):
        _, new = two_configs
        agents = build_agents(line_state_dc.node_capacity)
        # One agent cannot fit the new config: global abort.
        victim = sorted(new)[0]
        agents[victim].rule_capacity = new[victim].num_rules - 1
        session, _ = _drive("two-phase", new, agents)
        assert session.outcome is RolloutOutcome.ABORTED
        assert victim in session.refused_nodes
        for node in new:
            assert agents[node].effective_config() is None

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            RolloutDriver(ConfigChannel(ChannelSpec()), "magic")


class TestCoverageReport:
    def test_full_assignment_covers_everything(self, line_state_dc,
                                               two_configs):
        old, _ = two_configs
        report = coverage_report(line_state_dc.classes, dict(old))
        assert report.coverage == pytest.approx(1.0)
        assert report.duplication == pytest.approx(0.0)
        assert report.gap == pytest.approx(0.0)

    def test_empty_configs_cover_nothing(self, line_state_dc):
        empty = {node: ShimConfig(node=node, rules={})
                 for node in line_state_dc.nids_nodes}
        report = coverage_report(line_state_dc.classes, empty)
        assert report.coverage == pytest.approx(0.0)
        assert report.gap == pytest.approx(1.0)

    def test_union_doubles_duplication_not_coverage(self,
                                                    line_state_dc,
                                                    two_configs):
        from repro.core import union_config

        old, new = two_configs
        union = {node: union_config(old[node], new[node])
                 for node in old}
        report = coverage_report(line_state_dc.classes, union)
        assert report.coverage == pytest.approx(1.0)
        assert report.duplication == pytest.approx(1.0)

    def test_dead_node_creates_gap(self, line_state_dc, two_configs):
        old, _ = two_configs
        installed = dict(old)
        installed["B"] = None  # B is dead
        report = coverage_report(line_state_dc.classes, installed)
        assert report.coverage < 1.0

    def test_coverage_never_drops_during_lossy_overlap(
            self, line_state_dc, two_configs):
        """The satellite invariant: at every instant of an overlap
        rollout over a delayed, lossy, jittery channel, every class
        keeps full hash-space coverage."""
        from repro.core import OverlapTransition

        old, new = two_configs
        agents = build_agents(line_state_dc.node_capacity)
        for node in old:
            agents[node].deliver(ConfigMessage(
                MessageKind.INSTALL, 1, node, old[node]), now=0.0)
        loop = EventLoop()
        channel = ConfigChannel(
            ChannelSpec(base_delay=1.0, jitter=5.0, loss=0.3,
                        retransmit_timeout=4.0), seed=9)
        driver = RolloutDriver(channel, "overlap")
        session = driver.start(loop, agents, new,
                               OverlapTransition(old, new))
        while loop.queue.peek_time() is not None:
            loop.run_until(loop.queue.peek_time())
            installed = {node: agents[node].effective_config()
                         for node in line_state_dc.nids_nodes}
            report = coverage_report(line_state_dc.classes, installed)
            assert report.coverage == pytest.approx(1.0), loop.now
        assert session.outcome is RolloutOutcome.COMPLETED
        assert session.retired_at is not None
