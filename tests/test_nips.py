"""Unit tests for the NIPS rerouting extension (Section 9)."""

import pytest

from repro.core import MirrorPolicy, NIPSProblem, ReplicationProblem


class TestNIPSFormulation:
    def test_no_mirrors_matches_on_path(self, line_state):
        nips = NIPSProblem(line_state,
                           mirror_policy=MirrorPolicy.none()).solve()
        nids = ReplicationProblem(
            line_state, mirror_policy=MirrorPolicy.none()).solve()
        assert nips.load_cost == pytest.approx(nids.load_cost,
                                               abs=1e-6)

    def test_coverage_with_rerouting(self, line_state_dc):
        result = NIPSProblem(
            line_state_dc, mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=0.6, max_latency_penalty=4.0).solve()
        for cls in line_state_dc.classes:
            local = sum(result.process_fractions[cls.name].values())
            moved = result.replicated_fraction(cls.name)
            assert local + moved == pytest.approx(1.0, abs=1e-6)

    def test_rerouting_reduces_load(self, line_state_dc):
        plain = NIPSProblem(line_state_dc,
                            mirror_policy=MirrorPolicy.none()).solve()
        rerouted = NIPSProblem(
            line_state_dc, mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=0.6, max_latency_penalty=4.0).solve()
        assert rerouted.load_cost < plain.load_cost

    def test_latency_bound_respected(self, line_state_dc):
        budget = 1.0
        result = NIPSProblem(
            line_state_dc, mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=0.6, max_latency_penalty=budget).solve()
        for hops in result.extra_hops.values():
            assert hops <= budget + 1e-6

    def test_zero_latency_budget_blocks_detours(self, line_state_dc):
        """With zero allowed detour, only zero-extra-hop reroutes are
        usable; on the line+DC topology every DC detour adds hops, so
        the result matches pure on-path."""
        strangled = NIPSProblem(
            line_state_dc, mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=1.0, max_latency_penalty=0.0).solve()
        plain = NIPSProblem(line_state_dc,
                            mirror_policy=MirrorPolicy.none()).solve()
        assert strangled.load_cost == pytest.approx(plain.load_cost,
                                                    abs=1e-6)

    def test_tighter_latency_never_helps(self, line_state_dc):
        loads = []
        for budget in (0.0, 1.0, 2.0, 4.0):
            result = NIPSProblem(
                line_state_dc,
                mirror_policy=MirrorPolicy.datacenter(),
                max_link_load=0.6,
                max_latency_penalty=budget).solve()
            loads.append(result.load_cost)
        assert all(b <= a + 1e-9 for a, b in zip(loads, loads[1:]))

    def test_link_loads_stay_in_bounds(self, line_state_dc):
        result = NIPSProblem(
            line_state_dc, mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=0.5, max_latency_penalty=4.0).solve()
        for link, load in result.link_loads.items():
            assert -1e-6 <= load
            # Bound uses the NIPS-internal BG (full path bytes).
            assert load <= max(0.5, line_state_dc.bg_load(link)) + 1e-6

    def test_rerouting_relieves_downstream_links(self,
                                                 diamond_topology):
        """Rerouted traffic leaves its original downstream links, so
        link load can fall below the background level — the
        BG-not-constant effect the paper calls out. Needs a topology
        with genuine alternative paths (a diamond, DC at C): traffic
        on A-B-D rerouted via the DC travels A-C-DC-C-D instead."""
        from repro.core import NetworkState
        from repro.traffic.classes import TrafficClass

        cls = TrafficClass("A->D", "A", "D", ("A", "B", "D"), 1000.0,
                           session_bytes=10_000.0)
        state = NetworkState.calibrated(
            diamond_topology, [cls], dc_capacity_factor=10.0,
            dc_anchor="C")
        result = NIPSProblem(
            state, mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=1.0, max_latency_penalty=6.0).solve()
        assert result.replicated_fraction("A->D") > 0.01
        relieved = [
            link for link, load in result.link_loads.items()
            if load < state.bg_load(link) - 1e-9
        ]
        assert relieved, "expected some link to shed traffic"
        # Conservation: rerouting adds where the detour runs.
        loaded = [link for link, load in result.link_loads.items()
                  if load > state.bg_load(link) + 1e-9]
        assert loaded

    def test_validation(self, line_state):
        with pytest.raises(ValueError):
            NIPSProblem(line_state, max_link_load=2.0)
        with pytest.raises(ValueError):
            NIPSProblem(line_state, max_latency_penalty=-1.0)

    def test_mean_extra_hops(self, line_state_dc):
        result = NIPSProblem(
            line_state_dc, mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=0.6, max_latency_penalty=4.0).solve()
        assert result.mean_extra_hops >= 0.0
