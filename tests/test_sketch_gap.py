"""Tests for the sketch-gap experiment (estimator vs oracle LP).

This carries the pinned acceptance bar for the streaming estimation
subsystem: on tinet (1640 classes, seed 0, 6000 sampled sessions) the
LP solved on count-min estimates at a **4 KB-per-class state budget**
must realize a LoadCost within 10% of the exact-matrix oracle.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments import (
    format_sketch_gap,
    realized_load_cost,
    run_sketch_gap,
    sketch_gap_to_json,
)


@pytest.fixture(scope="module")
def tinet_series():
    # Two widths keep the module fast; 4096 is the 4 KB/class budget
    # point (160 B/class of actual sketch state on tinet).
    (series,) = run_sketch_gap(topologies=["tinet"],
                               widths=(1024, 4096), seed=0)
    return series


class TestAcceptanceBar:
    def test_gap_within_ten_percent_at_budget(self, tinet_series):
        point = tinet_series.budget_point(4096.0)
        assert point.gap <= 0.10
        assert point.width == 4096

    def test_realized_cost_dominates_lp_estimate_cost(self,
                                                      tinet_series):
        # The LP on overestimates is pessimistic in its own cost, but
        # what matters is realized: it must be >= the oracle optimum.
        oracle = tinet_series.oracle_load_cost
        for point in tinet_series.points:
            assert point.realized_load_cost >= oracle - 1e-9
            assert point.gap == pytest.approx(
                (point.realized_load_cost - oracle) / oracle)

    def test_wider_sketch_estimates_better(self, tinet_series):
        narrow = tinet_series.point(1024)
        wide = tinet_series.point(4096)
        assert wide.error_l1_rel <= narrow.error_l1_rel
        assert wide.state_bytes == 4 * narrow.state_bytes

    def test_sampling_floor_is_separated(self, tinet_series):
        # The sampled trace itself carries irreducible error; the
        # series reports it so sketch collisions can be judged
        # against the honest floor.
        assert tinet_series.sampling_gap >= 0.0
        assert tinet_series.sampling_gap <= 0.10

    def test_series_metadata(self, tinet_series):
        assert tinet_series.topology == "tinet"
        assert tinet_series.num_classes > 1000
        assert tinet_series.oracle_load_cost > 0
        for point in tinet_series.points:
            assert point.bytes_per_class == pytest.approx(
                point.state_bytes / tinet_series.num_classes)


class TestArtifacts:
    def test_json_schema(self, tinet_series):
        payload = json.loads(sketch_gap_to_json([tinet_series]))
        assert payload["schema"] == 1
        assert payload["experiment"] == "sketch-gap"
        (entry,) = payload["series"]
        assert entry["topology"] == "tinet"
        assert len(entry["points"]) == 2
        for point in entry["points"]:
            assert set(point) >= {"width", "depth", "state_bytes",
                                  "gap", "error_l1_rel",
                                  "realized_load_cost"}

    def test_text_table(self, tinet_series):
        text = format_sketch_gap([tinet_series])
        assert "sampling floor" in text
        assert "4096" in text

    def test_budget_point_rejects_impossible_budget(self,
                                                    tinet_series):
        with pytest.raises(KeyError):
            tinet_series.budget_point(0.001)


class TestValidation:
    def test_bad_mirror(self):
        with pytest.raises(ValueError):
            run_sketch_gap(mirror="bogus")

    def test_bad_widths(self):
        with pytest.raises(ValueError):
            run_sketch_gap(widths=())
        with pytest.raises(ValueError):
            run_sketch_gap(widths=(0,))

    def test_bad_depth_and_sessions(self):
        with pytest.raises(ValueError):
            run_sketch_gap(depth=0)
        with pytest.raises(ValueError):
            run_sketch_gap(sessions=0)


class TestRealizedLoadCost:
    def test_oracle_assignment_realizes_its_own_cost(self):
        # Solving on the exact matrix and re-charging the assignment
        # with the same volumes must reproduce the LP's LoadCost.
        from repro.core.controller import GlobalPlanner
        from repro.experiments.common import setup_topology

        setup = setup_topology("internet2",
                               dc_capacity_factor=1.0)
        planner = GlobalPlanner(setup.state, max_link_load=0.4)
        outcome = planner.plan(list(setup.state.classes))
        realized = realized_load_cost(outcome.state, outcome.result)
        assert realized == pytest.approx(outcome.result.load_cost,
                                         rel=1e-6)
