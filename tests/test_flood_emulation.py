"""End-to-end flood (DDoS) detection with per-destination splitting."""

import pytest

from repro.core import AggregationProblem
from repro.shim import build_aggregation_configs
from repro.shim.config import HashMode
from repro.shim.hashing import FiveTuple
from repro.simulation import Emulation, Session, TraceGenerator
from repro.simulation.packets import pop_prefix_ip
from repro.simulation.tracegen import TraceSpec


@pytest.fixture
def flood_emulation(line_state):
    lp = AggregationProblem(line_state, beta=0.0).solve()
    configs = build_aggregation_configs(
        line_state, lp, hash_mode=HashMode.DESTINATION)
    generator = TraceGenerator(line_state.topology.nodes,
                               line_state.classes,
                               spec=TraceSpec(total_sessions=10),
                               seed=2)
    return Emulation(line_state, configs, generator.classifier)


def ddos_sessions(cls, pops, victim_host, attacker_count):
    src_i = pops.index(cls.source)
    dst_i = pops.index(cls.target)
    sessions = []
    for attacker in range(attacker_count):
        tup = FiveTuple(6, pop_prefix_ip(src_i, 3000 + attacker),
                        40000, pop_prefix_ip(dst_i, victim_host), 80)
        sessions.append(Session(tup, cls.name, cls.path))
    return sessions


class TestFloodEmulation:
    def test_distributed_equals_centralized(self, flood_emulation,
                                            line_state):
        cls = line_state.class_by_name("A->D")
        pops = line_state.topology.nodes
        sessions = ddos_sessions(cls, pops, victim_host=42,
                                 attacker_count=30)
        # Background flows that stay under the threshold.
        sessions += ddos_sessions(cls, pops, victim_host=7,
                                  attacker_count=3)
        report = flood_emulation.run_flood(sessions, threshold=10)
        assert report.semantically_equivalent
        flagged = [dst for alerts in
                   report.distributed_alerts.values()
                   for dst in alerts]
        assert len(flagged) == 1
        victim_ip = pop_prefix_ip(pops.index("D"), 42)
        assert flagged[0] == victim_ip

    def test_victim_split_across_nodes_still_counted(
            self, flood_emulation, line_state):
        """Per-destination split: one node owns the victim, so even
        though attackers' sessions hash all over, the distinct-source
        count concentrates correctly."""
        cls = line_state.class_by_name("A->D")
        pops = line_state.topology.nodes
        sessions = ddos_sessions(cls, pops, victim_host=11,
                                 attacker_count=25)
        report = flood_emulation.run_flood(sessions, threshold=20)
        # Exactly one node did the counting for the victim.
        counting_nodes = [node for node, work in
                          report.work_units.items() if work > 0]
        assert len(counting_nodes) == 1
        assert report.semantically_equivalent

    def test_below_threshold_no_alerts(self, flood_emulation,
                                       line_state):
        cls = line_state.class_by_name("B->C")
        pops = line_state.topology.nodes
        sessions = ddos_sessions(cls, pops, victim_host=5,
                                 attacker_count=4)
        report = flood_emulation.run_flood(sessions, threshold=10)
        assert all(alerts == () for alerts in
                   report.distributed_alerts.values())
        assert report.semantically_equivalent
