"""Property tests: the vectorized lookup3 family is bit-exact against
the scalar functions (the fast replay path's foundational invariant)."""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.shim.hashing import (
    FiveTuple,
    bob_hash,
    bob_hash_batch,
    field_hash,
    field_hash_batch,
    session_hash,
    session_hash_batch,
)

u32 = st.integers(min_value=0, max_value=2 ** 32 - 1)
u16 = st.integers(min_value=0, max_value=2 ** 16 - 1)
seeds = st.integers(min_value=0, max_value=2 ** 16)


class TestBobHashBatch:
    @given(st.lists(st.lists(u32, min_size=1, max_size=8),
                    min_size=1, max_size=30)
           .filter(lambda rows: len({len(r) for r in rows}) == 1),
           seeds)
    @settings(max_examples=60, deadline=None)
    def test_bit_exact_vs_scalar(self, rows, seed):
        columns = [np.array(col, dtype=np.uint32)
                   for col in zip(*rows)]
        batch = bob_hash_batch(columns, seed=seed)
        assert batch.dtype == np.uint32
        for i, row in enumerate(rows):
            assert int(batch[i]) == bob_hash(*row, seed=seed)

    def test_every_word_count_hits_all_lanes(self):
        # 0..8 words exercises the empty case, each tail length, and
        # a full mixing round plus tail.
        rng = np.random.default_rng(42)
        for words in range(9):
            columns = [rng.integers(0, 2 ** 32, size=40,
                                    dtype=np.uint32)
                       for _ in range(words)]
            batch = bob_hash_batch(columns, seed=3, size=40)
            for i in range(40):
                expected = bob_hash(*(int(c[i]) for c in columns),
                                    seed=3)
                assert int(batch[i]) == expected

    def test_requires_size_without_columns(self):
        with pytest.raises(ValueError):
            bob_hash_batch([])
        empty = bob_hash_batch([], size=5)
        assert (empty == bob_hash()).all()


class TestSessionHashBatch:
    @given(st.lists(st.tuples(st.integers(0, 255), u32, u16, u32, u16),
                    min_size=1, max_size=40), seeds)
    @settings(max_examples=60, deadline=None)
    def test_bit_exact_vs_scalar(self, tuples, seed):
        proto, src_ip, src_port, dst_ip, dst_port = (
            np.array(col, dtype=np.uint32) for col in zip(*tuples))
        batch = session_hash_batch(proto, src_ip, src_port,
                                   dst_ip, dst_port, seed=seed)
        for i, row in enumerate(tuples):
            assert batch[i] == session_hash(FiveTuple(*row), seed=seed)

    @given(st.tuples(st.integers(0, 255), u32, u16, u32, u16), seeds)
    @settings(max_examples=60, deadline=None)
    def test_bidirectional(self, row, seed):
        tup = FiveTuple(*row)
        fwd = session_hash_batch(
            *(np.array([v], dtype=np.uint32) for v in tup), seed=seed)
        rev = session_hash_batch(
            *(np.array([v], dtype=np.uint32) for v in tup.reversed()),
            seed=seed)
        assert fwd[0] == rev[0]

    def test_canonicalization_tie_break_on_port(self):
        # Equal IPs: the smaller port becomes the source.
        tup = FiveTuple(6, 100, 9000, 100, 80)
        batch = session_hash_batch(
            *(np.array([v], dtype=np.uint32) for v in tup))
        assert batch[0] == session_hash(tup)


class TestFieldHashBatch:
    @given(st.lists(u32, min_size=1, max_size=60), seeds)
    @settings(max_examples=60, deadline=None)
    def test_bit_exact_vs_scalar(self, values, seed):
        batch = field_hash_batch(np.array(values, dtype=np.uint32),
                                 seed=seed)
        for i, value in enumerate(values):
            assert batch[i] == field_hash(value, seed=seed)

    def test_range(self):
        rng = np.random.default_rng(7)
        values = rng.integers(0, 2 ** 32, size=1000, dtype=np.uint32)
        hashes = field_hash_batch(values)
        assert (hashes >= 0.0).all() and (hashes < 1.0).all()


class TestScalarBobHashRefactor:
    """The index-walk rewrite of ``bob_hash`` (replacing the O(n^2)
    ``pop(0)`` loop) must keep the exact output for all word counts."""

    def test_pure_and_order_sensitive(self):
        assert bob_hash(1, 2, 3) == bob_hash(1, 2, 3)
        assert bob_hash(1, 2, 3) != bob_hash(3, 2, 1)

    def test_matches_reference_pop_loop(self):
        # Reimplement the original list-popping algorithm inline and
        # compare on long inputs (where the index walk matters).
        from repro.shim.hashing import _MASK32, _final, _mix

        def bob_hash_reference(*words, seed=0):
            data = [w & _MASK32 for w in words]
            a = b = c = (0xDEADBEEF + (len(data) << 2) + seed) & _MASK32
            while len(data) > 3:
                a = (a + data.pop(0)) & _MASK32
                b = (b + data.pop(0)) & _MASK32
                c = (c + data.pop(0)) & _MASK32
                a, b, c = _mix(a, b, c)
            if data:
                a = (a + data.pop(0)) & _MASK32
            if data:
                b = (b + data.pop(0)) & _MASK32
            if data:
                c = (c + data.pop(0)) & _MASK32
            return _final(a, b, c)

        rng = np.random.default_rng(11)
        for count in (0, 1, 2, 3, 4, 5, 6, 7, 8, 50, 101):
            words = [int(w) for w in
                     rng.integers(0, 2 ** 32, size=count)]
            assert bob_hash(*words, seed=9) == \
                bob_hash_reference(*words, seed=9)
