"""Tests for the experiment runners (small parameterizations).

These check the *shapes* the paper reports, on fast configurations;
the benchmark harness runs the full versions.
"""

import pytest

from repro.core import ArchitectureKind
from repro.experiments import (
    format_dc_capacity,
    format_fig10,
    format_fig11,
    format_fig12,
    format_fig13,
    format_fig14,
    format_fig15,
    format_fig16,
    format_fig17,
    format_fig18,
    format_fig19,
    format_placement,
    format_table1,
    run_dc_capacity_ablation,
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_fig14,
    run_fig15,
    run_fig16_17,
    run_fig18,
    run_fig19,
    run_placement_ablation,
    run_table1,
)

SMALL = ["internet2"]


class TestTable1:
    def test_solve_times_small(self):
        rows = run_table1(topologies=["internet2", "geant"])
        assert len(rows) == 2
        for row in rows:
            # Well within "timescales of network reconfigurations".
            assert row.replication_solve_s < 30.0
            assert row.aggregation_solve_s < 30.0
        assert "Table 1" in format_table1(rows)

    def test_pop_counts_match_paper(self):
        rows = run_table1(topologies=["internet2"])
        assert rows[0].num_pops == 11


class TestFig10:
    def test_replication_halves_peak_work(self):
        result = run_fig10(total_sessions=1200)
        # Paper: ~2x reduction on the maximally loaded node (DC 8x).
        assert result.max_work_reduction() > 1.3
        # Emulated reduction tracks the LP prediction.
        lp_gain = result.lp_max_no_replicate / result.lp_max_replicate
        assert result.max_work_reduction() == pytest.approx(lp_gain,
                                                            rel=0.35)
        assert "Figure 10" in format_fig10(result)

    def test_dc_does_work_only_under_replication(self):
        result = run_fig10(total_sessions=800)
        assert result.work_no_replicate[result.dc_node] == 0.0
        assert result.work_replicate[result.dc_node] > 0.0


class TestFig11:
    def test_monotone_and_diminishing(self):
        series = run_fig11(topologies=SMALL,
                           link_loads=(0.0, 0.1, 0.4, 1.0))[0]
        assert series.max_loads == sorted(series.max_loads,
                                          reverse=True)
        # Diminishing returns past 0.4 (paper's knee).
        assert series.knee_gain(0.4) < 0.1
        assert "Figure 11" in format_fig11([series])


class TestFig12:
    def test_gap_closes_with_link_budget(self):
        rows = run_fig12(topologies=SMALL)
        gaps = rows[0].gaps
        # More link budget -> DC more utilized -> gap less negative.
        assert gaps[(0.4, 10.0)] >= gaps[(0.1, 10.0)] - 1e-9
        # All gaps are <= 0 + tolerance (DC never exceeds max-NIDS in
        # these calibrated scenarios by more than noise).
        assert "Figure 12" in format_fig12(rows)


class TestFig13:
    def test_replication_wins(self):
        rows = run_fig13(topologies=["internet2", "geant"])
        for row in rows:
            assert row.max_loads[ArchitectureKind.INGRESS] == \
                pytest.approx(1.0)
            assert row.replication_gain_vs_ingress() > 2.0
            assert row.replication_gain_vs_path() > 1.0
        assert "Figure 13" in format_fig13(rows)


class TestFig14:
    def test_one_hop_helps_two_hop_adds_little(self):
        rows = run_fig14(topologies=["internet2", "geant"])
        for row in rows:
            assert row.one_hop_gain() >= 1.0 - 1e-9
            # "Going to two hops does not add significant value."
            assert row.two_hop_extra_gain() < 1.15
        # Where on-path balancing is imperfect, one hop buys real gains.
        geant = next(r for r in rows if r.topology == "geant")
        assert geant.one_hop_gain() > 1.2
        assert "Figure 14" in format_fig14(rows)


class TestFig15:
    def test_replication_dominates_under_variability(self):
        rows = run_fig15(topologies=SMALL, num_matrices=6)
        by_arch = {r.architecture: r.summary for r in rows}
        ing = by_arch[ArchitectureKind.INGRESS]
        rep = by_arch[ArchitectureKind.PATH_REPLICATE]
        both = by_arch[ArchitectureKind.DC_PLUS_ONE_HOP]
        assert rep["median"] < ing["median"]
        assert rep["max"] < ing["max"]
        assert both["median"] <= rep["median"] + 1e-9
        assert "Figure 15" in format_fig15(rows)

    def test_no_replication_worst_case_can_exceed_one(self):
        rows = run_fig15(topologies=SMALL, num_matrices=10, seed=2)
        by_arch = {r.architecture: r.summary for r in rows}
        assert by_arch[ArchitectureKind.INGRESS]["max"] > 1.0


class TestFig16And17:
    def test_shapes(self):
        points = run_fig16_17(thetas=(0.1, 0.5, 0.9),
                              runs_per_theta=2)
        by = {(p.config, p.theta): p for p in points}
        # Ingress misses a lot at low overlap; DC misses ~nothing.
        assert by[("ingress", 0.1)].miss_rate > 0.4
        assert by[("dc-0.4", 0.1)].miss_rate < 0.05
        assert by[("dc-0.4", 0.9)].miss_rate < 0.05
        # Miss rates fall (weakly) as overlap grows.
        assert by[("ingress", 0.9)].miss_rate <= \
            by[("ingress", 0.1)].miss_rate
        assert by[("path", 0.9)].miss_rate <= \
            by[("path", 0.1)].miss_rate + 1e-9
        # DC architecture carries its load below the path-only one.
        assert by[("dc-0.4", 0.5)].max_load < \
            by[("path", 0.5)].max_load
        assert "Figure 16" in format_fig16(points)
        assert "Figure 17" in format_fig17(points)


class TestFig18And19:
    def test_tradeoff_curve(self):
        series = run_fig18(topologies=SMALL, num_points=5)[0]
        load_best, comm_best = series.best_point()
        # Some beta gets both normalized costs well below 1.
        assert load_best < 1.0
        assert comm_best < 1.0
        assert "Figure 18" in format_fig18([series])

    def test_aggregation_reduces_imbalance(self):
        rows = run_fig19(topologies=["internet2", "geant"],
                         num_beta_points=5)
        for row in rows:
            assert row.improvement >= 1.0
        assert "Figure 19" in format_fig19(rows)


class TestAblations:
    def test_placement_spread_small(self):
        rows = run_placement_ablation(topologies=SMALL)
        # Paper: "the gap between the different placement strategies is
        # very small".
        assert rows[0].spread() < 0.25
        assert "placement" in format_placement(rows)

    def test_dc_capacity_knee(self):
        series = run_dc_capacity_ablation(
            topologies=SMALL, capacities=(1.0, 4.0, 8.0, 12.0),
            link_loads=(0.1, 0.4))
        for s in series:
            assert s.max_loads == sorted(s.max_loads, reverse=True)
        # Lower link budget -> knee at or below the high-budget knee.
        low = next(s for s in series if s.max_link_load == 0.1)
        high = next(s for s in series if s.max_link_load == 0.4)
        assert low.knee_capacity() <= high.knee_capacity() + 1e-9
        assert "capacity" in format_dc_capacity(series)
