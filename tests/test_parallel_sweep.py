"""Parallel sweep executor: ordered fan-out with serial-identical
results (single-CPU CI boxes assert determinism, not wall-clock)."""

import pytest

from repro.core import AggregationProblem
from repro.experiments import ParallelSweepRunner, run_scan_epoch_sweep
from repro.experiments.fig10_emulation import run_fig10
from repro.shim import build_aggregation_configs
from repro.simulation import Emulation, TraceGenerator
from repro.simulation.tracegen import TraceSpec


def _square(value):
    """Module-level so worker processes can unpickle it."""
    return value * value


class TestParallelSweepRunner:
    def test_serial_when_jobs_is_one(self):
        runner = ParallelSweepRunner(1)
        assert runner.map(_square, [3, 1, 4, 1, 5]) == [9, 1, 16, 1, 25]

    def test_parallel_map_preserves_order(self):
        runner = ParallelSweepRunner(2)
        items = list(range(20))
        assert runner.map(_square, items) == [i * i for i in items]

    def test_single_item_stays_in_process(self):
        # One item never pays the pool spin-up cost (and unpicklable
        # callables therefore still work).
        runner = ParallelSweepRunner(4)
        assert runner.map(lambda x: x + 1, [41]) == [42]

    def test_zero_jobs_rejected(self):
        with pytest.raises(ValueError):
            ParallelSweepRunner(0)

    def test_default_is_serial(self):
        assert ParallelSweepRunner(None).map(_square, [2, 3]) == [4, 9]


class TestScanEpochSweep:
    def test_matches_sequential_epochs(self, line_state):
        lp = AggregationProblem(line_state, beta=0.0).solve()
        configs = build_aggregation_configs(line_state, lp)
        generator = TraceGenerator(
            line_state.topology.nodes, line_state.classes,
            spec=TraceSpec(total_sessions=200, scanner_count=2,
                           scanner_fanout=15), seed=29)
        epochs = [generator.generate(with_payloads=False)
                  for _ in range(3)]
        emulation = Emulation(line_state, configs,
                              generator.classifier)
        sequential = emulation.run_scan_epochs(epochs, threshold=8)
        swept = run_scan_epoch_sweep(
            line_state, configs, generator.classifier, epochs,
            threshold=8, jobs=2)
        assert swept == sequential

    def test_fast_flag_passes_through(self, line_state):
        lp = AggregationProblem(line_state, beta=0.0).solve()
        configs = build_aggregation_configs(line_state, lp)
        generator = TraceGenerator(
            line_state.topology.nodes, line_state.classes,
            spec=TraceSpec(total_sessions=200), seed=30)
        epochs = [generator.generate(with_payloads=False)]
        sequential = Emulation(
            line_state, configs,
            generator.classifier).run_scan_epochs(epochs, threshold=8)
        swept = run_scan_epoch_sweep(
            line_state, configs, generator.classifier, epochs,
            threshold=8, jobs=2, fast=True)
        assert swept == sequential


class TestFig10Parallel:
    def test_parallel_equals_serial(self):
        serial = run_fig10(total_sessions=400, seed=7, jobs=1)
        parallel = run_fig10(total_sessions=400, seed=7, jobs=2)
        assert parallel == serial
