"""Parallel sweep executor: ordered fan-out with serial-identical
results (single-CPU CI boxes assert determinism, not wall-clock)."""

import pytest

from repro.core import AggregationProblem
from repro.experiments import ParallelSweepRunner, run_scan_epoch_sweep
from repro.experiments.fig10_emulation import run_fig10
from repro.experiments.parallel import SlabChannel
from repro.shim import build_aggregation_configs
from repro.simulation import (
    Emulation,
    TraceGenerator,
    trace_fingerprint,
)
from repro.simulation.tracegen import TraceSpec


def _square(value):
    """Module-level so worker processes can unpickle it."""
    return value * value


class TestParallelSweepRunner:
    def test_serial_when_jobs_is_one(self):
        runner = ParallelSweepRunner(1)
        assert runner.map(_square, [3, 1, 4, 1, 5]) == [9, 1, 16, 1, 25]

    def test_parallel_map_preserves_order(self):
        runner = ParallelSweepRunner(2)
        items = list(range(20))
        assert runner.map(_square, items) == [i * i for i in items]

    def test_single_item_stays_in_process(self):
        # One item never pays the pool spin-up cost (and unpicklable
        # callables therefore still work).
        runner = ParallelSweepRunner(4)
        assert runner.map(lambda x: x + 1, [41]) == [42]

    def test_zero_jobs_rejected(self):
        with pytest.raises(ValueError):
            ParallelSweepRunner(0)

    def test_default_is_serial(self):
        assert ParallelSweepRunner(None).map(_square, [2, 3]) == [4, 9]

    def test_auto_chunksize_targets_four_chunks_per_worker(self):
        runner = ParallelSweepRunner(2)
        # ceil(items / (4 * jobs)), floored at 1
        assert runner.auto_chunksize(0) == 1
        assert runner.auto_chunksize(1) == 1
        assert runner.auto_chunksize(8) == 1
        assert runner.auto_chunksize(9) == 2
        assert runner.auto_chunksize(100) == 13

    def test_explicit_chunksize_preserves_results(self):
        runner = ParallelSweepRunner(2)
        items = list(range(25))
        expected = [i * i for i in items]
        for chunksize in (1, 5, 100):
            assert runner.map(_square, items,
                              chunksize=chunksize) == expected

    def test_invalid_chunksize_rejected(self):
        with pytest.raises(ValueError):
            ParallelSweepRunner(2).map(_square, [1, 2, 3], chunksize=0)


class TestSlabChannel:
    def test_round_trip_is_bit_identical(self, line_state):
        generator = TraceGenerator(
            line_state.topology.nodes, line_state.classes,
            spec=TraceSpec(total_sessions=150), seed=9)
        batch = generator.generate_batch(
            tuple(line_state.nids_nodes), direct=True)
        with SlabChannel(batch, meta={"origin": "test"}) as channel:
            reopened = SlabChannel.open_batch(channel.path)
            assert trace_fingerprint(reopened) == \
                trace_fingerprint(batch)

    def test_close_removes_spill(self, line_state):
        import pathlib
        generator = TraceGenerator(
            line_state.topology.nodes, line_state.classes,
            spec=TraceSpec(total_sessions=50), seed=9)
        batch = generator.generate_batch(
            tuple(line_state.nids_nodes), direct=True)
        channel = SlabChannel(batch)
        spill = pathlib.Path(channel.path)
        assert spill.is_dir()
        channel.close()
        assert not spill.exists()


class TestScanEpochSweep:
    def test_matches_sequential_epochs(self, line_state):
        lp = AggregationProblem(line_state, beta=0.0).solve()
        configs = build_aggregation_configs(line_state, lp)
        generator = TraceGenerator(
            line_state.topology.nodes, line_state.classes,
            spec=TraceSpec(total_sessions=200, scanner_count=2,
                           scanner_fanout=15), seed=29)
        epochs = [generator.generate(with_payloads=False)
                  for _ in range(3)]
        emulation = Emulation(line_state, configs,
                              generator.classifier)
        sequential = emulation.run_scan_epochs(epochs, threshold=8)
        swept = run_scan_epoch_sweep(
            line_state, configs, generator.classifier, epochs,
            threshold=8, jobs=2)
        assert swept == sequential

    def test_fast_flag_passes_through(self, line_state):
        lp = AggregationProblem(line_state, beta=0.0).solve()
        configs = build_aggregation_configs(line_state, lp)
        generator = TraceGenerator(
            line_state.topology.nodes, line_state.classes,
            spec=TraceSpec(total_sessions=200), seed=30)
        epochs = [generator.generate(with_payloads=False)]
        sequential = Emulation(
            line_state, configs,
            generator.classifier).run_scan_epochs(epochs, threshold=8)
        swept = run_scan_epoch_sweep(
            line_state, configs, generator.classifier, epochs,
            threshold=8, jobs=2, fast=True)
        assert swept == sequential

    def test_chunksize_does_not_change_reports(self, line_state):
        lp = AggregationProblem(line_state, beta=0.0).solve()
        configs = build_aggregation_configs(line_state, lp)
        generator = TraceGenerator(
            line_state.topology.nodes, line_state.classes,
            spec=TraceSpec(total_sessions=150, scanner_count=1,
                           scanner_fanout=12), seed=31)
        epochs = [generator.generate(with_payloads=False)
                  for _ in range(4)]
        sequential = Emulation(
            line_state, configs,
            generator.classifier).run_scan_epochs(epochs, threshold=8)
        for chunksize in (1, 2, 10):
            swept = run_scan_epoch_sweep(
                line_state, configs, generator.classifier, epochs,
                threshold=8, jobs=2, fast=True, chunksize=chunksize)
            assert swept == sequential


class TestFig10Parallel:
    def test_parallel_equals_serial(self):
        serial = run_fig10(total_sessions=400, seed=7, jobs=1)
        parallel = run_fig10(total_sessions=400, seed=7, jobs=2)
        assert parallel == serial
