"""The repro.analysis lint engine: rules, pragmas, baselines, CLI.

Each rule is exercised against a trigger fixture (must flag) and a
clean sibling (must not) from ``tests/analysis_fixtures/``; the
acceptance-style injection test copies the real ``runtime/scenario.py``
into a scratch tree, plants a ``time.time()`` call, and asserts DET001
catches it. The self-scan test is the gate's gate: the shipped source
tree must lint clean with an empty baseline.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    LintEngine,
    filter_baseline,
    load_baseline,
    render_json,
    render_text,
    write_baseline,
)
from repro.analysis.docsync import parse_metric_table
from repro.analysis.rules import default_rules
from repro.analysis.rules.concurrency import (
    HandlerSharedStateRule,
    ScheduleCollisionRule,
    ScheduledClosureRule,
    SeedProvenanceRule,
)
from repro.analysis.rules.determinism import (
    UnseededRandomRule,
    WallClockRule,
)
from repro.analysis.rules.hygiene import (
    BuildModelInLoopRule,
    MutableDefaultRule,
    StrictAnnotationRule,
    UnusedImportRule,
)
from repro.analysis.rules.metrics import MetricsDocRule
from repro.analysis.rules.numerics import (
    FloatEqualityRule,
    HashDtypeRule,
    MemmapDtypeRule,
)
from repro.analysis.rules.sketches import SketchSeedRule
from repro.cli import main

FIXTURES = Path(__file__).parent / "analysis_fixtures"
REPO_ROOT = Path(__file__).resolve().parents[1]

#: (rule factory, rule id, trigger fixture, expected count, clean fixture)
RULE_CASES = [
    (WallClockRule, "DET001", "runtime/det001_trigger.py", 2,
     "runtime/det001_clean.py"),
    (UnseededRandomRule, "DET002", "runtime/det002_trigger.py", 3,
     "runtime/det002_clean.py"),
    (FloatEqualityRule, "NUM001", "num001_trigger.py", 2,
     "num001_clean.py"),
    (HashDtypeRule, "NUM002", "shim/num002_trigger.py", 2,
     "shim/num002_clean.py"),
    (MemmapDtypeRule, "NUM003", "simulation/num003_trigger.py", 2,
     "simulation/num003_clean.py"),
    (BuildModelInLoopRule, "HYG001", "hyg001_trigger.py", 1,
     "hyg001_clean.py"),
    (BuildModelInLoopRule, "HYG001",
     "core/controller/hyg001_problem_trigger.py", 1,
     "core/controller/hyg001_problem_clean.py"),
    (MutableDefaultRule, "HYG002", "hyg002_trigger.py", 2,
     "hyg002_clean.py"),
    (UnusedImportRule, "HYG003", "hyg003_trigger.py", 2,
     "hyg003_clean.py"),
    (StrictAnnotationRule, "HYG004", "lpsolve/hyg004_trigger.py", 2,
     "lpsolve/hyg004_clean.py"),
    (SketchSeedRule, "SKT001", "sketch/skt001_trigger.py", 2,
     "sketch/skt001_clean.py"),
    (HandlerSharedStateRule, "RACE001", "runtime/race001_trigger.py", 2,
     "runtime/race001_clean.py"),
    (ScheduledClosureRule, "RACE002", "runtime/race002_trigger.py", 2,
     "runtime/race002_clean.py"),
    (ScheduleCollisionRule, "ORD001", "ord001_trigger", 2,
     "ord001_clean"),
    (SeedProvenanceRule, "DET003", "runtime/det003_trigger.py", 2,
     "runtime/det003_clean.py"),
]


def run_rule(rule, path: Path):
    engine = LintEngine(rules=[rule], project_root=FIXTURES)
    return engine.run([path])


class TestRuleFixtures:
    @pytest.mark.parametrize(
        "factory,rule_id,trigger,count,clean", RULE_CASES,
        ids=[case[1] for case in RULE_CASES])
    def test_trigger_flagged(self, factory, rule_id, trigger, count,
                             clean):
        findings = run_rule(factory(), FIXTURES / trigger)
        assert len(findings) == count
        assert all(f.rule_id == rule_id for f in findings)
        assert all(f.line > 0 for f in findings)

    @pytest.mark.parametrize(
        "factory,rule_id,trigger,count,clean", RULE_CASES,
        ids=[case[1] for case in RULE_CASES])
    def test_clean_not_flagged(self, factory, rule_id, trigger, count,
                               clean):
        assert run_rule(factory(), FIXTURES / clean) == []

    def test_scoped_rules_ignore_out_of_scope_paths(self, tmp_path):
        # The same wall-clock source outside runtime//simulation/ is
        # legal (experiments measure real time on purpose).
        source = (FIXTURES / "runtime/det001_trigger.py").read_text(
            encoding="utf-8")
        target = tmp_path / "experiments" / "timing.py"
        target.parent.mkdir()
        target.write_text(source, encoding="utf-8")
        assert run_rule(WallClockRule(), target) == []

    def test_injected_wall_clock_in_scenario_is_caught(self, tmp_path):
        # Acceptance check: plant time.time() into a copy of the real
        # scenario runner and make sure the gate would catch it.
        scenario = (REPO_ROOT / "src/repro/runtime/scenario.py"
                    ).read_text(encoding="utf-8")
        target = tmp_path / "runtime" / "scenario.py"
        target.parent.mkdir()
        target.write_text(
            scenario + "\n\ndef _leak_wall_clock():\n"
                       "    import time\n"
                       "    return time.time()\n",
            encoding="utf-8")
        findings = run_rule(WallClockRule(), target)
        assert [f.rule_id for f in findings] == ["DET001"]
        assert "time.time" in findings[0].message

    def test_pristine_scenario_is_clean(self):
        source = REPO_ROOT / "src/repro/runtime/scenario.py"
        assert run_rule(WallClockRule(), source) == []


class TestPragmas:
    def test_same_line_and_comment_line_pragmas_suppress(self):
        findings = run_rule(WallClockRule(),
                            FIXTURES / "runtime/pragma_allow.py")
        # Three time.time() calls; only the unsuppressed one survives.
        assert len(findings) == 1
        text = (FIXTURES / "runtime/pragma_allow.py").read_text(
            encoding="utf-8")
        unsuppressed_line = next(
            i for i, line in enumerate(text.splitlines(), start=1)
            if "time.time()" in line and "allow[" not in line
            and "# repro-lint" not in text.splitlines()[i - 2])
        assert findings[0].line == unsuppressed_line

    def test_pragma_for_other_rule_does_not_suppress(self, tmp_path):
        target = tmp_path / "runtime" / "mod.py"
        target.parent.mkdir()
        target.write_text(
            "import time\n\n"
            "def f():\n"
            "    return time.time()  # repro-lint: allow[NUM001]\n",
            encoding="utf-8")
        findings = run_rule(WallClockRule(), target)
        assert [f.rule_id for f in findings] == ["DET001"]

    def test_pragma_covers_multi_line_statement(self, tmp_path):
        # The pragma sits on the closing line of a call that spans
        # four lines; the finding anchors on the opening line.
        target = tmp_path / "runtime" / "mod.py"
        target.parent.mkdir()
        target.write_text(
            "import time\n\n"
            "def f(log):\n"
            "    log.record(\n"
            "        time.time(),\n"
            "        'started',\n"
            "    )  # repro-lint: allow[DET001]\n",
            encoding="utf-8")
        assert run_rule(WallClockRule(), target) == []

    def test_pragma_on_decorated_def_covers_header(self, tmp_path):
        # HYG002 anchors on the ``def`` line; a pragma on the
        # decorator line above it must still suppress.
        target = tmp_path / "mod.py"
        target.write_text(
            "import functools\n\n\n"
            "@functools.lru_cache()  # repro-lint: allow[HYG002]\n"
            "def f(items=[]):\n"
            "    return items\n",
            encoding="utf-8")
        engine = LintEngine(rules=[MutableDefaultRule()],
                            project_root=tmp_path)
        assert engine.run([target]) == []

    def test_pragma_span_does_not_leak_to_siblings(self, tmp_path):
        # A pragma inside one statement must not blanket the next.
        target = tmp_path / "mod.py"
        target.write_text(
            "def f(a=[]):  # repro-lint: allow[HYG002]\n"
            "    return a\n\n\n"
            "def g(b=[]):\n"
            "    return b\n",
            encoding="utf-8")
        engine = LintEngine(rules=[MutableDefaultRule()],
                            project_root=tmp_path)
        findings = engine.run([target])
        assert [f.line for f in findings] == [5]

    def test_project_rule_honours_pragma(self, tmp_path):
        # ORD001 findings are emitted from finalize(), after per-file
        # contexts are gone; allow[] pragmas must still be honoured.
        for name, pragma in [("alpha", ""),
                             ("beta", "  # repro-lint: allow[ORD001]")]:
            (tmp_path / f"{name}.py").write_text(
                "def start(loop, epoch):\n"
                f"    loop.schedule_at(epoch * 60.0, start){pragma}\n",
                encoding="utf-8")
        engine = LintEngine(rules=[ScheduleCollisionRule()],
                            project_root=tmp_path)
        findings = engine.run([tmp_path])
        assert [f.file for f in findings] == ["alpha.py"]


class TestBaseline:
    def test_round_trip_suppresses_and_reports_stale(self, tmp_path):
        findings = run_rule(MutableDefaultRule(),
                            FIXTURES / "hyg002_trigger.py")
        assert len(findings) == 2
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, findings)

        keys = load_baseline(baseline_path)
        fresh, stale = filter_baseline(findings, keys)
        assert fresh == [] and stale == []

        # A baselined finding that got fixed shows up as stale.
        fresh, stale = filter_baseline(findings[:1], keys)
        assert fresh == []
        assert stale == [findings[1].key()]

    def test_baseline_keys_ignore_line_numbers(self):
        findings = run_rule(MutableDefaultRule(),
                            FIXTURES / "hyg002_trigger.py")
        for finding in findings:
            assert f":{finding.line}" not in finding.key()


class TestRendering:
    def test_json_schema(self):
        findings = run_rule(MutableDefaultRule(),
                            FIXTURES / "hyg002_trigger.py")
        payload = json.loads(render_json(findings))
        assert payload["version"] == 1
        assert len(payload["findings"]) == 2
        record = payload["findings"][0]
        assert set(record) == {"rule", "severity", "file", "line",
                               "message"}
        assert record["rule"] == "HYG002"
        assert record["severity"] == "error"

    def test_text_summary_counts(self):
        findings = run_rule(MutableDefaultRule(),
                            FIXTURES / "hyg002_trigger.py")
        report = render_text(findings, files_hint="fixtures")
        assert "2 error(s), 0 warning(s) in fixtures" in report
        assert report.count("[HYG002]") == 2


def _metric_project(tmp_path: Path, doc_table: str,
                    source: str) -> Path:
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "observability.md").write_text(
        "## Metric names\n\n| Name | Kind | Meaning |\n"
        "| --- | --- | --- |\n" + doc_table, encoding="utf-8")
    module = tmp_path / "mod.py"
    module.write_text(source, encoding="utf-8")
    return module


class TestMetricsDocRule:
    def _run(self, tmp_path: Path, doc_table: str, source: str):
        module = _metric_project(tmp_path, doc_table, source)
        rule = MetricsDocRule(tmp_path / "docs" / "observability.md")
        engine = LintEngine(rules=[rule], project_root=tmp_path)
        return engine.run([module])

    def test_documented_calls_pass(self, tmp_path):
        findings = self._run(
            tmp_path,
            "| `lp.solves` | counter | solves |\n"
            "| `lp.solve.seconds` | histogram | time |\n",
            "def f(reg):\n"
            "    reg.inc('lp.solves')\n"
            "    with reg.span('lp.solve'):\n"
            "        pass\n")
        assert findings == []

    def test_undocumented_metric_flagged(self, tmp_path):
        findings = self._run(
            tmp_path,
            "| `lp.solves` | counter | solves |\n",
            "def f(reg):\n"
            "    reg.inc('lp.solves')\n"
            "    reg.gauge('lp.mystery', 1.0)\n")
        assert [f.rule_id for f in findings] == ["MET001"]
        assert "lp.mystery" in findings[0].message

    def test_kind_mismatch_flagged(self, tmp_path):
        findings = self._run(
            tmp_path,
            "| `lp.solves` | gauge | oops |\n",
            "def f(reg):\n"
            "    reg.inc('lp.solves')\n")
        assert [f.rule_id for f in findings] == ["MET001"]
        assert "documented as a gauge" in findings[0].message

    def test_stale_doc_row_flagged(self, tmp_path):
        findings = self._run(
            tmp_path,
            "| `lp.solves` | counter | solves |\n"
            "| `lp.retired` | counter | gone |\n",
            "def f(reg):\n"
            "    reg.inc('lp.solves')\n")
        assert [f.rule_id for f in findings] == ["MET002"]
        assert "lp.retired" in findings[0].message

    def test_wildcard_row_matches_fstring_call(self, tmp_path):
        findings = self._run(
            tmp_path,
            "| `emulation.work_units.<node>` | gauge | per node |\n",
            "def f(reg, node):\n"
            "    reg.gauge(f'emulation.work_units.{node}', 1.0)\n")
        assert findings == []

    def test_partial_scan_without_calls_reports_nothing(self, tmp_path):
        findings = self._run(
            tmp_path,
            "| `lp.solves` | counter | solves |\n",
            "def f():\n    return 1\n")
        assert findings == []

    def test_missing_doc_with_calls_is_an_error(self, tmp_path):
        module = tmp_path / "mod.py"
        module.write_text("def f(reg):\n    reg.inc('x.y')\n",
                          encoding="utf-8")
        rule = MetricsDocRule(tmp_path / "docs" / "observability.md")
        engine = LintEngine(rules=[rule], project_root=tmp_path)
        findings = engine.run([module])
        assert [f.rule_id for f in findings] == ["MET002"]

    def test_table_parser_handles_multi_name_and_suffix_rows(self):
        table = ("## Metric names\n\n| Name | Kind |\n| --- | --- |\n"
                 "| `lp.solves`, `lp.writes` | counter |\n"
                 "| `shim.decision.process`, `.replicate` | counter |\n"
                 "| `emulation.work_units.<node>` | gauge |\n")
        names = parse_metric_table(table)
        assert names == {
            "lp.solves": "counter",
            "lp.writes": "counter",
            "shim.decision.process": "counter",
            "shim.decision.replicate": "counter",
            "emulation.work_units.*": "gauge",
        }

    def test_table_parser_rejects_missing_section(self):
        with pytest.raises(ValueError):
            parse_metric_table("# nothing here\n")


class TestSelfScan:
    def test_shipped_tree_is_clean(self):
        """The repo's own src/ must pass every rule with no baseline."""
        engine = LintEngine(rules=default_rules(REPO_ROOT),
                            project_root=REPO_ROOT)
        findings = engine.run([REPO_ROOT / "src"])
        assert findings == [], "\n" + "\n".join(
            f.format() for f in findings)

    def test_shipped_baseline_is_empty(self):
        keys = load_baseline(REPO_ROOT / "lint-baseline.json")
        assert keys == []


class TestCli:
    def test_lint_default_scan_is_clean(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s), 0 warning(s)" in out

    def test_lint_json_output(self, capsys):
        assert main(["lint", "--json", "-"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == {"version": 1, "findings": []}

    def test_lint_fails_on_trigger_fixture(self, capsys):
        trigger = str(FIXTURES / "hyg002_trigger.py")
        assert main(["lint", trigger, "--rules", "HYG002"]) == 1
        out = capsys.readouterr().out
        assert "[HYG002]" in out

    def test_lint_rule_filter_excludes_other_rules(self, capsys):
        trigger = str(FIXTURES / "hyg002_trigger.py")
        assert main(["lint", trigger, "--rules", "DET001"]) == 0

    def test_lint_write_and_consume_baseline(self, tmp_path, capsys):
        trigger = str(FIXTURES / "hyg002_trigger.py")
        baseline = str(tmp_path / "baseline.json")
        assert main(["lint", trigger, "--rules", "HYG002",
                     "--write-baseline", "--baseline", baseline]) == 0
        capsys.readouterr()
        assert main(["lint", trigger, "--rules", "HYG002",
                     "--baseline", baseline]) == 0

    def test_lint_missing_path_is_usage_error(self, capsys):
        assert main(["lint", "definitely/not/a/path.py"]) == 2

    def test_check_baseline_flags_stale_entries(self, tmp_path, capsys):
        # Baseline both findings, then "fix" one: the stale entry is
        # tolerated by default but fatal under --check-baseline.
        trigger = (FIXTURES / "hyg002_trigger.py").read_text(
            encoding="utf-8")
        target = tmp_path / "mod.py"
        target.write_text(trigger, encoding="utf-8")
        baseline = str(tmp_path / "baseline.json")
        assert main(["lint", str(target), "--rules", "HYG002",
                     "--write-baseline", "--baseline", baseline]) == 0
        capsys.readouterr()

        fixed = trigger.replace("def tally(key, counts={}):",
                                "def tally(key, counts=None):")
        assert fixed != trigger
        target.write_text(fixed, encoding="utf-8")
        assert main(["lint", str(target), "--rules", "HYG002",
                     "--baseline", baseline]) == 0
        capsys.readouterr()
        assert main(["lint", str(target), "--rules", "HYG002",
                     "--baseline", baseline, "--check-baseline"]) == 1
        err = capsys.readouterr().err
        assert "stale" in err

    def test_check_baseline_passes_when_in_sync(self, tmp_path, capsys):
        trigger = str(FIXTURES / "hyg002_trigger.py")
        baseline = str(tmp_path / "baseline.json")
        assert main(["lint", trigger, "--rules", "HYG002",
                     "--write-baseline", "--baseline", baseline]) == 0
        capsys.readouterr()
        assert main(["lint", trigger, "--rules", "HYG002",
                     "--baseline", baseline, "--check-baseline"]) == 0
