"""Unit tests for the simulated NIDS engines."""

import pytest

from repro.nids import (
    AhoCorasick,
    ScanDetector,
    SignatureEngine,
    StatefulSessionAnalyzer,
)


class TestAhoCorasick:
    def test_single_pattern(self):
        ac = AhoCorasick([b"abc"])
        matches = ac.search(b"xxabcxx")
        assert len(matches) == 1
        assert matches[0].pattern == b"abc"
        assert matches[0].end_offset == 5

    def test_multiple_patterns(self):
        ac = AhoCorasick([b"he", b"she", b"his", b"hers"])
        found = {m.pattern for m in ac.search(b"ushers")}
        assert found == {b"she", b"he", b"hers"}

    def test_overlapping_occurrences(self):
        ac = AhoCorasick([b"aa"])
        assert len(ac.search(b"aaaa")) == 3

    def test_no_match(self):
        ac = AhoCorasick([b"xyz"])
        assert ac.search(b"abcabc") == []

    def test_empty_payload(self):
        ac = AhoCorasick([b"abc"])
        assert ac.search(b"") == []

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            AhoCorasick([b""])

    def test_pattern_at_boundaries(self):
        ac = AhoCorasick([b"start", b"end"])
        found = {m.pattern for m in ac.search(b"start...end")}
        assert found == {b"start", b"end"}

    def test_binary_patterns(self):
        ac = AhoCorasick([b"\x90\x90\x90"])
        assert len(ac.search(b"\x00\x90\x90\x90\x00")) == 1

    def test_matches_python_find_reference(self):
        """Cross-check against a naive scan on random-ish data."""
        patterns = [b"ab", b"bc", b"cab", b"abcab"]
        ac = AhoCorasick(patterns)
        payload = b"abcabcababcab"
        expected = sum(payload.startswith(p, i)
                       for p in patterns
                       for i in range(len(payload)))
        assert len(ac.search(payload)) == expected


class TestSignatureEngine:
    def test_detects_embedded_signature(self):
        engine = SignatureEngine(patterns=[b"EVIL"])
        found = engine.inspect("s1", b"aaaEVILbbb")
        assert len(found) == 1
        assert engine.stats.alerts == 1

    def test_work_accounting(self):
        engine = SignatureEngine(patterns=[b"x"],
                                 per_session_cost=100.0,
                                 per_byte_cost=2.0)
        engine.inspect("s1", b"12345")           # new session
        engine.inspect("s1", b"123")             # same session
        engine.inspect("s2", b"1")               # another session
        assert engine.stats.sessions_seen == 2
        assert engine.stats.work_units == pytest.approx(
            2 * 100.0 + 2.0 * 9)

    def test_reset(self):
        engine = SignatureEngine(patterns=[b"x"])
        engine.inspect("s1", b"x")
        engine.reset()
        assert engine.stats.work_units == 0.0
        assert engine.matches == []

    def test_default_rule_set_loaded(self):
        engine = SignatureEngine()
        assert engine.inspect("s", b"GET /etc/passwd HTTP/1.0")

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            SignatureEngine(per_session_cost=-1.0)


class TestScanDetector:
    def test_distinct_destination_counting(self):
        det = ScanDetector()
        det.observe_flow(1, 10)
        det.observe_flow(1, 11)
        det.observe_flow(1, 10)  # duplicate destination
        det.observe_flow(2, 10)
        assert det.destination_count(1) == 2
        assert det.destination_count(2) == 1
        assert det.destination_count(99) == 0

    def test_threshold_flagging(self):
        det = ScanDetector(threshold=2)
        for dst in range(5):
            det.observe_flow(7, dst)
        det.observe_flow(8, 1)
        assert det.flagged_sources() == [7]

    def test_zero_threshold_reports_everything(self):
        det = ScanDetector(threshold=0)
        det.observe_flow(1, 10)
        assert det.flagged_sources() == [1]

    def test_reports(self):
        det = ScanDetector()
        det.observe_flow(1, 10)
        det.observe_flow(1, 11)
        source_report = det.source_count_report("N1")
        assert source_report.counts == {1: 2}
        set_report = det.destination_set_report("N1")
        assert set_report.destinations == {1: frozenset({10, 11})}
        flow_report = det.flow_tuple_report("N1")
        assert flow_report.tuples == frozenset({(1, 10), (1, 11)})

    def test_flow_key_dedup(self):
        det = ScanDetector(per_session_cost=10.0)
        det.observe_flow(1, 10, flow_key="f1")
        det.observe_flow(1, 10, flow_key="f1")
        assert det.stats.work_units == 10.0

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            ScanDetector(threshold=-1)


class TestStatefulAnalyzer:
    def test_coverage_requires_both_directions(self):
        analyzer = StatefulSessionAnalyzer()
        analyzer.observe("s1", "fwd")
        assert not analyzer.is_covered("s1")
        analyzer.observe("s1", "rev")
        assert analyzer.is_covered("s1")

    def test_partial_and_covered_counts(self):
        analyzer = StatefulSessionAnalyzer()
        analyzer.observe("s1", "fwd")
        analyzer.observe("s1", "rev")
        analyzer.observe("s2", "fwd")
        assert analyzer.sessions_covered == 1
        assert analyzer.sessions_partial == 1
        assert analyzer.covered_sessions() == {"s1"}

    def test_bad_direction_rejected(self):
        analyzer = StatefulSessionAnalyzer()
        with pytest.raises(ValueError):
            analyzer.observe("s1", "sideways")

    def test_repeated_packets_idempotent_for_coverage(self):
        analyzer = StatefulSessionAnalyzer()
        for _ in range(5):
            analyzer.observe("s1", "fwd")
        assert not analyzer.is_covered("s1")
        assert analyzer.sessions_partial == 1
