"""Tests for port-aware classification of per-application classes."""

import pytest

from repro.shim import FiveTuple
from repro.simulation import TraceGenerator
from repro.simulation.packets import pop_prefix_ip
from repro.simulation.tracegen import PrefixClassifier, TraceSpec
from repro.traffic import (
    DEFAULT_APPLICATION_MIX,
    TrafficMatrix,
    classes_with_applications,
)


@pytest.fixture
def app_setup(line_topology):
    matrix = TrafficMatrix({("A", "D"): 1000.0, ("B", "C"): 400.0})
    classes = classes_with_applications(line_topology, matrix)
    ports = {cls.name: app.port
             for cls in classes
             for app in DEFAULT_APPLICATION_MIX
             if cls.name.endswith("/" + app.name)}
    return line_topology, classes, ports


class TestPortClassifier:
    def test_shared_pair_without_ports_rejected(self, app_setup):
        topology, classes, _ = app_setup
        with pytest.raises(ValueError):
            PrefixClassifier(topology.nodes, classes)

    def test_classifies_by_port(self, app_setup):
        topology, classes, ports = app_setup
        classifier = PrefixClassifier(topology.nodes, classes, ports)
        a, d = topology.nodes.index("A"), topology.nodes.index("D")
        http = FiveTuple(6, pop_prefix_ip(a, 1), 40000,
                         pop_prefix_ip(d, 2), 80)
        irc = FiveTuple(6, pop_prefix_ip(a, 1), 40000,
                        pop_prefix_ip(d, 2), 6667)
        assert classifier(http) == "A->D/http"
        assert classifier(irc) == "A->D/irc"

    def test_unknown_port_falls_back_to_first_class(self, app_setup):
        topology, classes, ports = app_setup
        classifier = PrefixClassifier(topology.nodes, classes, ports)
        a, d = topology.nodes.index("A"), topology.nodes.index("D")
        odd = FiveTuple(6, pop_prefix_ip(a, 1), 40000,
                        pop_prefix_ip(d, 2), 9999)
        assert classifier(odd) == "A->D/http"  # first registered

    def test_generator_emits_matching_ports(self, app_setup):
        topology, classes, ports = app_setup
        generator = TraceGenerator(
            topology.nodes, classes,
            spec=TraceSpec(total_sessions=300), seed=5,
            class_ports=ports)
        for session in generator.generate(with_payloads=False):
            assert session.five_tuple.dst_port == \
                ports[session.class_name]
            assert generator.classifier(session.five_tuple) == \
                session.class_name

    def test_single_class_pairs_need_no_ports(self, line_topology):
        matrix = TrafficMatrix({("A", "D"): 100.0})
        from repro.traffic import classes_from_matrix

        classes = classes_from_matrix(line_topology, matrix)
        classifier = PrefixClassifier(line_topology.nodes, classes)
        a, d = (line_topology.nodes.index("A"),
                line_topology.nodes.index("D"))
        tup = FiveTuple(6, pop_prefix_ip(a, 1), 40000,
                        pop_prefix_ip(d, 2), 12345)
        assert classifier(tup) == "A->D"
