"""Unit tests for traffic classes, matrices, and the gravity model."""

import pytest

from repro.topology import builtin_topology, shortest_path_routing
from repro.traffic import (
    TrafficClass,
    TrafficMatrix,
    classes_from_matrix,
    gravity_traffic,
    gravity_traffic_matrix,
    paper_total_sessions,
)


class TestTrafficClass:
    def test_basic_properties(self):
        cls = TrafficClass("A->C", "A", "C", ("A", "B", "C"), 100.0,
                           session_bytes=1000.0)
        assert cls.ingress == "A"
        assert cls.is_symmetric
        assert cls.rev_nodes == ("C", "B", "A")
        assert cls.common_nodes == ("A", "B", "C")
        assert cls.total_bytes == 100_000.0

    def test_path_must_start_at_source(self):
        with pytest.raises(ValueError):
            TrafficClass("x", "A", "C", ("B", "C"), 1.0)

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            TrafficClass("x", "A", "A", (), 1.0)

    def test_negative_sessions_rejected(self):
        with pytest.raises(ValueError):
            TrafficClass("x", "A", "B", ("A", "B"), -1.0)

    def test_negative_footprint_rejected(self):
        with pytest.raises(ValueError):
            TrafficClass("x", "A", "B", ("A", "B"), 1.0,
                         footprints={"cpu": -1.0})

    def test_asymmetric_common_nodes(self):
        cls = TrafficClass("x", "A", "D", ("A", "B", "D"), 10.0,
                           rev_path=("D", "C", "A"))
        assert not cls.is_symmetric
        assert cls.common_nodes == ("A", "D")

    def test_footprint_default_zero(self):
        cls = TrafficClass("x", "A", "B", ("A", "B"), 1.0)
        assert cls.footprint("memory") == 0.0
        assert cls.footprint("cpu") == 1.0

    def test_scaled(self):
        cls = TrafficClass("x", "A", "B", ("A", "B"), 10.0)
        assert cls.scaled(2.5).num_sessions == 25.0
        with pytest.raises(ValueError):
            cls.scaled(-1.0)

    def test_with_paths(self):
        cls = TrafficClass("x", "A", "D", ("A", "B", "D"), 10.0)
        updated = cls.with_paths(("A", "C", "D"), ("D", "B", "A"))
        assert updated.path == ("A", "C", "D")
        assert updated.rev_path == ("D", "B", "A")
        assert updated.num_sessions == 10.0


class TestTrafficMatrix:
    def test_volume_lookup(self):
        m = TrafficMatrix({("A", "B"): 5.0})
        assert m.volume("A", "B") == 5.0
        assert m.volume("B", "A") == 0.0

    def test_self_pair_rejected(self):
        with pytest.raises(ValueError):
            TrafficMatrix({("A", "A"): 1.0})

    def test_negative_volume_rejected(self):
        with pytest.raises(ValueError):
            TrafficMatrix({("A", "B"): -1.0})

    def test_total(self):
        m = TrafficMatrix({("A", "B"): 5.0, ("B", "C"): 3.0})
        assert m.total == 8.0

    def test_scaled(self):
        m = TrafficMatrix({("A", "B"): 5.0}).scaled(2.0)
        assert m.volume("A", "B") == 10.0

    def test_perturbed(self):
        m = TrafficMatrix({("A", "B"): 5.0, ("B", "C"): 3.0})
        p = m.perturbed({("A", "B"): 2.0})
        assert p.volume("A", "B") == 10.0
        assert p.volume("B", "C") == 3.0

    def test_perturbed_negative_factor_rejected(self):
        m = TrafficMatrix({("A", "B"): 5.0})
        with pytest.raises(ValueError):
            m.perturbed({("A", "B"): -0.5})

    def test_pairs_sorted_and_nonzero(self):
        m = TrafficMatrix({("B", "C"): 1.0, ("A", "B"): 2.0,
                           ("C", "D"): 0.0})
        assert list(m.pairs()) == [("A", "B"), ("B", "C")]


class TestGravity:
    def test_paper_scaling_rule(self):
        assert paper_total_sessions(11) == pytest.approx(8_000_000)
        assert paper_total_sessions(22) == pytest.approx(16_000_000)

    def test_total_volume(self, line_topology):
        m = gravity_traffic_matrix(line_topology, total_sessions=1000.0)
        assert m.total == pytest.approx(1000.0)

    def test_proportional_to_populations(self, line_topology):
        m = gravity_traffic_matrix(line_topology, total_sessions=1000.0)
        # pop(A)=4, pop(D)=2, pop(B)=pop(C)=1.
        assert m.volume("A", "D") > m.volume("B", "C")
        ratio = m.volume("A", "D") / m.volume("B", "C")
        assert ratio == pytest.approx(8.0)

    def test_zero_population_node_excluded(self, line_topology):
        topo = line_topology.with_datacenter("B", "DC")
        m = gravity_traffic_matrix(topo, total_sessions=100.0)
        assert all("DC" not in pair for pair in m.pairs())

    def test_classes_follow_routing(self, line_topology):
        routing = shortest_path_routing(line_topology)
        classes = gravity_traffic(line_topology, total_sessions=100.0,
                                  routing=routing)
        for cls in classes:
            assert cls.path == routing.path(cls.source, cls.target)

    def test_classes_cover_all_pairs(self, line_topology):
        classes = gravity_traffic(line_topology, total_sessions=100.0)
        assert len(classes) == 12  # 4*3 ordered pairs

    def test_default_volume_matches_paper(self):
        topo = builtin_topology("internet2")
        m = gravity_traffic_matrix(topo)
        assert m.total == pytest.approx(8_000_000)

    def test_classes_from_matrix_custom_parameters(self, line_topology):
        m = gravity_traffic_matrix(line_topology, 10.0)
        classes = classes_from_matrix(line_topology, m,
                                      session_bytes=5.0,
                                      cpu_footprint=2.0,
                                      record_bytes=32.0)
        assert all(c.session_bytes == 5.0 for c in classes)
        assert all(c.footprint("cpu") == 2.0 for c in classes)
        assert all(c.record_bytes == 32.0 for c in classes)
