"""Unit tests for LP model compilation and solving."""

import pytest

from repro.lpsolve import (
    InfeasibleError,
    Model,
    ModelError,
    SolveStatus,
    UnboundedError,
    lin_sum,
)


class TestModelConstruction:
    def test_variable_bounds_validated(self):
        m = Model()
        with pytest.raises(ModelError):
            m.add_variable("x", lb=2.0, ub=1.0)

    def test_duplicate_names_deduplicated(self):
        m = Model()
        a = m.add_variable("x")
        b = m.add_variable("x")
        assert a.name != b.name

    def test_add_constraint_rejects_bool(self):
        m = Model()
        m.add_variable("x")
        with pytest.raises(ModelError):
            m.add_constraint(1 <= 2)  # plain bool, not a Constraint

    def test_cross_model_variables_rejected(self):
        m1, m2 = Model("a"), Model("b")
        x = m1.add_variable("x")
        with pytest.raises(ModelError):
            m2.add_constraint(x <= 1)

    def test_cross_model_objective_rejected(self):
        m1, m2 = Model("a"), Model("b")
        x = m1.add_variable("x")
        with pytest.raises(ModelError):
            m2.minimize(x)

    def test_solve_without_objective_raises(self):
        m = Model()
        m.add_variable("x")
        with pytest.raises(ModelError):
            m.solve()

    def test_solve_without_variables_raises(self):
        m = Model()
        with pytest.raises(ModelError):
            m.minimize(1.0)
            m.solve()

    def test_add_variables_vector(self):
        m = Model()
        xs = m.add_variables(["a", "b", "c"], lb=0, ub=1)
        assert len(xs) == 3
        assert m.num_variables == 3


class TestSolving:
    def test_trivial_minimum_at_bound(self):
        m = Model()
        x = m.add_variable("x", lb=2.0)
        m.minimize(x)
        sol = m.solve()
        assert sol.is_optimal
        assert sol.value(x) == pytest.approx(2.0)

    def test_maximize(self):
        m = Model()
        x = m.add_variable("x", lb=0, ub=5)
        m.maximize(x)
        sol = m.solve()
        assert sol.objective_value == pytest.approx(5.0)

    def test_classic_two_variable_lp(self):
        # max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj=12
        m = Model()
        x = m.add_variable("x")
        y = m.add_variable("y")
        m.add_constraint(x + y <= 4)
        m.add_constraint(x + 3 * y <= 6)
        m.maximize(3 * x + 2 * y)
        sol = m.solve()
        assert sol.objective_value == pytest.approx(12.0)
        assert sol.value(x) == pytest.approx(4.0)
        assert sol.value(y) == pytest.approx(0.0)

    def test_equality_constraint(self):
        m = Model()
        x = m.add_variable("x")
        y = m.add_variable("y")
        m.add_constraint(x + y == 3)
        m.minimize(2 * x + y)
        sol = m.solve()
        assert sol.value(y) == pytest.approx(3.0)
        assert sol.objective_value == pytest.approx(3.0)

    def test_min_max_epigraph_pattern(self):
        # minimize max(x, y) with x + y == 10 -> both 5.
        m = Model()
        x = m.add_variable("x")
        y = m.add_variable("y")
        z = m.add_variable("z")
        m.add_constraint(x + y == 10)
        m.add_constraint(z >= x)
        m.add_constraint(z >= y)
        m.minimize(z)
        sol = m.solve()
        assert sol.objective_value == pytest.approx(5.0)

    def test_infeasible_raises(self):
        m = Model()
        x = m.add_variable("x", lb=0, ub=1)
        m.add_constraint(x >= 2)
        m.minimize(x)
        with pytest.raises(InfeasibleError):
            m.solve()

    def test_infeasible_without_check(self):
        m = Model()
        x = m.add_variable("x", lb=0, ub=1)
        m.add_constraint(x >= 2)
        m.minimize(x)
        sol = m.solve(check=False)
        assert sol.status is SolveStatus.INFEASIBLE
        assert not sol.is_optimal

    def test_unbounded_raises(self):
        m = Model()
        x = m.add_variable("x", lb=0.0)  # no upper bound
        m.maximize(x)
        with pytest.raises(UnboundedError):
            m.solve()

    def test_solution_evaluates_expressions(self):
        m = Model()
        x = m.add_variable("x", lb=1, ub=1)
        y = m.add_variable("y", lb=2, ub=2)
        m.minimize(x + y)
        sol = m.solve()
        assert sol.value(3 * x + y + 1) == pytest.approx(6.0)
        assert sol.value(7.5) == pytest.approx(7.5)

    def test_values_dict(self):
        m = Model()
        x = m.add_variable("x", lb=1, ub=1)
        m.minimize(x)
        sol = m.solve()
        assert sol.values() == {x: pytest.approx(1.0)}

    def test_solve_time_recorded(self):
        m = Model()
        x = m.add_variable("x", lb=0)
        m.minimize(x)
        sol = m.solve()
        assert sol.solve_seconds >= 0.0

    def test_all_constraints_satisfied_at_optimum(self):
        m = Model()
        xs = m.add_variables([f"x{i}" for i in range(5)], lb=0, ub=1)
        m.add_constraint(lin_sum(xs) == 1)
        for i, x in enumerate(xs):
            m.add_constraint(x <= 0.3 + 0.1 * i)
        m.minimize(lin_sum((i + 1) * x for i, x in enumerate(xs)))
        sol = m.solve()
        values = sol.values()
        for con in m.constraints:
            assert con.violation(values) < 1e-7

    def test_zero_fraction_solution_respects_bounds(self):
        m = Model()
        x = m.add_variable("x", lb=0.25, ub=0.75)
        m.minimize(-x)
        sol = m.solve()
        assert 0.25 <= sol.value(x) <= 0.75
