"""Unit tests for NetworkState calibration (Section 8.2 conventions)."""

import pytest

from repro.core import (
    NetworkState,
    ingress_requirements,
    link_background_bytes,
)
from repro.topology import shortest_path_routing
from repro.traffic.classes import TrafficClass


class TestIngressRequirements:
    def test_demand_at_gateways_only(self, line_classes):
        demand = ingress_requirements(line_classes, ["cpu"])["cpu"]
        assert demand == {"A": 1000.0, "B": 500.0}

    def test_multiple_resources(self, line_classes):
        heavy = line_classes[0]
        classes = [
            TrafficClass(heavy.name, heavy.source, heavy.target,
                         heavy.path, heavy.num_sessions,
                         footprints={"cpu": 1.0, "mem": 2.0}),
        ]
        demand = ingress_requirements(classes, ["cpu", "mem"])
        assert demand["mem"]["A"] == 2000.0


class TestLinkBackground:
    def test_symmetric_class_bytes(self, line_classes):
        bg = link_background_bytes(line_classes[:1])  # A->D, 10MB
        assert bg[("A", "B")] == pytest.approx(10_000_000.0)
        assert bg[("B", "C")] == pytest.approx(10_000_000.0)
        assert bg[("C", "D")] == pytest.approx(10_000_000.0)

    def test_asymmetric_class_split_half(self):
        cls = TrafficClass("x", "A", "C", ("A", "B", "C"), 100.0,
                           session_bytes=1000.0,
                           rev_path=("C", "D", "A"))
        bg = link_background_bytes([cls])
        assert bg[("A", "B")] == pytest.approx(50_000.0)
        assert bg[("C", "D")] == pytest.approx(50_000.0)


class TestCalibration:
    def test_ingress_max_load_is_one(self, line_state):
        loads = line_state.ingress_load()
        assert max(loads.values()) == pytest.approx(1.0)

    def test_max_bg_load_is_one_third(self, line_state):
        assert line_state.max_bg_load() == pytest.approx(1.0 / 3.0)

    def test_datacenter_capacity_factor(self, line_state_dc):
        base = line_state_dc.capacity("cpu", "A")
        assert line_state_dc.capacity("cpu", "DC") == \
            pytest.approx(10.0 * base)

    def test_datacenter_anchor_default_placement(self, line_state_dc):
        # "observed" placement: B and C see all traffic on the line.
        assert line_state_dc.topology.has_link("B", "DC")

    def test_dc_link_has_zero_background(self, line_state_dc):
        anchor_link = ("B", "DC")
        assert line_state_dc.bg_load(anchor_link) == 0.0

    def test_link_headroom_validation(self, line_topology, line_classes):
        with pytest.raises(ValueError):
            NetworkState.calibrated(line_topology, line_classes,
                                    link_headroom=0.5)

    def test_invalid_dc_factor(self, line_topology, line_classes):
        with pytest.raises(ValueError):
            NetworkState.calibrated(line_topology, line_classes,
                                    dc_capacity_factor=0.0)

    def test_unknown_class_node_rejected(self, line_topology):
        bad = TrafficClass("x", "Z", "A", ("Z", "A"), 1.0)
        with pytest.raises(ValueError):
            NetworkState.calibrated(line_topology, [bad])


class TestDerivedStates:
    def test_with_traffic_keeps_capacity(self, line_state, line_classes):
        doubled = [c.scaled(2.0) for c in line_classes]
        new_state = line_state.with_traffic(doubled)
        assert new_state.node_capacity == line_state.node_capacity
        # Ingress load doubles because capacity did not change.
        assert max(new_state.ingress_load().values()) == \
            pytest.approx(2.0)

    def test_with_traffic_recomputes_background(self, line_state,
                                                line_classes):
        doubled = [c.scaled(2.0) for c in line_classes]
        new_state = line_state.with_traffic(doubled)
        assert new_state.max_bg_load() == pytest.approx(2.0 / 3.0)

    def test_augmented_capacity_spread(self, line_state):
        augmented = line_state.with_augmented_capacity(4.0)
        base = line_state.capacity("cpu", "A")
        # 4x extra spread over 4 nodes -> each node gets +1x.
        assert augmented.capacity("cpu", "A") == pytest.approx(2 * base)

    def test_augmented_excludes_datacenter(self, line_state_dc):
        augmented = line_state_dc.with_augmented_capacity(4.0)
        assert augmented.capacity("cpu", "DC") == \
            line_state_dc.capacity("cpu", "DC")

    def test_augmented_negative_rejected(self, line_state):
        with pytest.raises(ValueError):
            line_state.with_augmented_capacity(-1.0)

    def test_class_by_name(self, line_state):
        assert line_state.class_by_name("A->D").source == "A"
        with pytest.raises(KeyError):
            line_state.class_by_name("missing")


class TestRawConstructorValidation:
    def test_missing_capacity_rejected(self, line_topology,
                                       line_classes):
        routing = shortest_path_routing(line_topology)
        with pytest.raises(ValueError):
            NetworkState(line_topology, routing, line_classes,
                         node_capacity={"cpu": {"A": 1.0}},
                         link_capacity={l: 1.0
                                        for l in line_topology.links},
                         bg_bytes={})

    def test_zero_link_capacity_rejected(self, line_topology,
                                         line_classes):
        routing = shortest_path_routing(line_topology)
        caps = {"cpu": {n: 1.0 for n in line_topology.nodes}}
        with pytest.raises(ValueError):
            NetworkState(line_topology, routing, line_classes,
                         node_capacity=caps,
                         link_capacity={l: 0.0
                                        for l in line_topology.links},
                         bg_bytes={})
