"""Integration tests: LP solution -> shim configs -> trace emulation."""

import pytest

from repro.core import (
    AggregationProblem,
    MirrorPolicy,
    NetworkState,
    ReplicationProblem,
    SplitTrafficProblem,
)
from repro.shim import (
    build_aggregation_configs,
    build_replication_configs,
    build_split_configs,
)
from repro.simulation import Emulation, TraceGenerator
from repro.simulation.tracegen import TraceSpec
from repro.traffic.classes import TrafficClass


@pytest.fixture
def emulation_pieces(line_state_dc):
    generator = TraceGenerator(
        line_state_dc.topology.nodes, line_state_dc.classes,
        spec=TraceSpec(total_sessions=600), seed=11)
    sessions = generator.generate(with_payloads=True)
    return line_state_dc, generator, sessions


class TestSignatureEmulation:
    def test_every_packet_processed_exactly_once(self,
                                                 emulation_pieces):
        state, generator, sessions = emulation_pieces
        result = ReplicationProblem(
            state, mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=0.4).solve()
        configs = build_replication_configs(state, result)
        emulation = Emulation(state, configs, generator.classifier)
        report = emulation.run_signature(sessions)
        total_packets = sum(len(s.packets) for s in sessions)
        processed = sum(e for e in report.work_units.values())
        assert report.packets_total == total_packets
        # Each session appears at exactly one engine.
        assert sum(report.sessions_processed.values()) == len(sessions)

    def test_replication_reduces_measured_peak(self, emulation_pieces):
        state, generator, sessions = emulation_pieces
        reports = {}
        for label, policy in (("plain", MirrorPolicy.none()),
                              ("dc", MirrorPolicy.datacenter())):
            result = ReplicationProblem(
                state, mirror_policy=policy,
                max_link_load=0.4).solve()
            configs = build_replication_configs(state, result)
            emulation = Emulation(state, configs, generator.classifier)
            reports[label] = emulation.run_signature(sessions)
        plain_peak = reports["plain"].max_work(exclude=["DC"])
        dc_peak = reports["dc"].max_work(exclude=["DC"])
        assert dc_peak < plain_peak

    def test_measured_loads_track_lp_prediction(self, emulation_pieces):
        state, generator, sessions = emulation_pieces
        result = ReplicationProblem(
            state, mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=0.4).solve()
        configs = build_replication_configs(state, result)
        emulation = Emulation(state, configs, generator.classifier)
        report = emulation.run_signature(sessions)
        # Compare normalized profiles: sessions per node vs LP loads.
        lp = result.node_loads["cpu"]
        cap = {n: state.capacity("cpu", n) for n in state.nids_nodes}
        predicted = {n: lp[n] * cap[n] for n in state.nids_nodes}
        total_pred = sum(predicted.values())
        total_meas = sum(report.sessions_processed.values())
        for node in state.nids_nodes:
            share_pred = predicted[node] / total_pred
            share_meas = report.sessions_processed[node] / total_meas
            assert share_meas == pytest.approx(share_pred, abs=0.06)

    def test_replicated_bytes_only_on_mirror_routes(self,
                                                    emulation_pieces):
        state, generator, sessions = emulation_pieces
        result = ReplicationProblem(
            state, mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=0.4).solve()
        configs = build_replication_configs(state, result)
        emulation = Emulation(state, configs, generator.classifier)
        report = emulation.run_signature(sessions)
        assert report.replicated_bytes > 0
        for link, volume in report.link_replicated_bytes.items():
            assert volume >= 0
        # Every replication route ends at the DC anchor link.
        anchor_link = tuple(sorted(("B", "DC")))
        assert report.link_replicated_bytes.get(anchor_link, 0) > 0


class TestLocalOffloadEmulation:
    def test_one_hop_offload_reduces_measured_peak(self, line_state):
        """The Figure 14 architecture operationally: local one-hop
        mirrors absorb work without any datacenter."""
        from repro.core import MirrorPolicy, ReplicationProblem

        plain_lp = ReplicationProblem(
            line_state, mirror_policy=MirrorPolicy.none()).solve()
        local_lp = ReplicationProblem(
            line_state, mirror_policy=MirrorPolicy.neighbors(1),
            max_link_load=1.0).solve()
        generator = TraceGenerator(
            line_state.topology.nodes, line_state.classes,
            spec=TraceSpec(total_sessions=800), seed=31)
        sessions = generator.generate(with_payloads=False)

        peaks = {}
        for label, lp in (("plain", plain_lp), ("local", local_lp)):
            configs = build_replication_configs(line_state, lp)
            emulation = Emulation(line_state, configs,
                                  generator.classifier)
            report = emulation.run_signature(sessions)
            peaks[label] = report.max_work()
            # Conservation regardless of policy.
            assert sum(report.sessions_processed.values()) == \
                len(sessions)
        assert peaks["local"] <= peaks["plain"] * 1.05


class TestStatefulEmulation:
    def test_symmetric_routing_full_coverage(self, emulation_pieces):
        state, generator, sessions = emulation_pieces
        result = SplitTrafficProblem(state, max_link_load=0.4).solve()
        configs = build_split_configs(state, result)
        emulation = Emulation(state, configs, generator.classifier)
        report = emulation.run_stateful(sessions)
        assert report.miss_rate == pytest.approx(0.0, abs=1e-9)

    def test_asymmetric_emulated_miss_matches_lp(self, line_topology):
        # One class B-only forward, C-only reverse; LP must offload.
        split = TrafficClass("split", "B", "B", ("B",), 200.0,
                             session_bytes=1000.0, rev_path=("C",))
        filler = TrafficClass("fill", "A", "D", ("A", "B", "C", "D"),
                              800.0, session_bytes=1000.0)
        state = NetworkState.calibrated(
            line_topology, [split, filler], dc_capacity_factor=10.0,
            dc_anchor="B")
        lp = SplitTrafficProblem(state, max_link_load=0.4).solve()
        configs = build_split_configs(state, lp)
        generator = TraceGenerator(
            state.topology.nodes, state.classes,
            spec=TraceSpec(total_sessions=500), seed=12)
        sessions = generator.generate(with_payloads=False)
        emulation = Emulation(state, configs, generator.classifier)
        report = emulation.run_stateful(sessions)
        assert report.miss_rate == pytest.approx(lp.miss_rate, abs=0.05)

    def test_no_offload_emulation_misses(self, line_topology):
        split = TrafficClass("split", "B", "B", ("B",), 200.0,
                             session_bytes=1000.0, rev_path=("C",))
        filler = TrafficClass("fill", "A", "D", ("A", "B", "C", "D"),
                              800.0, session_bytes=1000.0)
        state = NetworkState.calibrated(
            line_topology, [split, filler], dc_capacity_factor=10.0,
            dc_anchor="B")
        lp = SplitTrafficProblem(state, allow_offload=False).solve()
        configs = build_split_configs(state, lp)
        generator = TraceGenerator(
            state.topology.nodes, state.classes,
            spec=TraceSpec(total_sessions=500), seed=13)
        sessions = generator.generate(with_payloads=False)
        emulation = Emulation(state, configs, generator.classifier)
        report = emulation.run_stateful(sessions)
        # All 'split' sessions (1/5 of traffic) are missed.
        assert report.miss_rate == pytest.approx(0.2, abs=0.03)


class TestScanEmulation:
    def test_distributed_equals_centralized(self, line_state):
        lp = AggregationProblem(line_state, beta=0.0).solve()
        configs = build_aggregation_configs(line_state, lp)
        spec = TraceSpec(total_sessions=400, scanner_count=3,
                         scanner_fanout=25)
        generator = TraceGenerator(line_state.topology.nodes,
                                   line_state.classes,
                                   spec=spec, seed=14)
        sessions = generator.generate(with_payloads=False)
        emulation = Emulation(line_state, configs,
                              generator.classifier)
        report = emulation.run_scan(sessions, threshold=10)
        assert report.semantically_equivalent
        # The injected scanners are detected.
        total_alerts = sum(len(a) for a in
                           report.distributed_alerts.values())
        assert total_alerts >= 3

    def test_comm_cost_positive_when_distributed(self, line_state):
        lp = AggregationProblem(line_state, beta=0.0).solve()
        configs = build_aggregation_configs(line_state, lp)
        generator = TraceGenerator(
            line_state.topology.nodes, line_state.classes,
            spec=TraceSpec(total_sessions=300), seed=15)
        sessions = generator.generate(with_payloads=False)
        emulation = Emulation(line_state, configs,
                              generator.classifier)
        report = emulation.run_scan(sessions, threshold=5)
        assert report.record_hops > 0
        assert report.byte_hops > 0

    def test_ingress_only_has_zero_comm_cost(self, line_state):
        # Huge beta -> everything counted at the gateway itself.
        lp = AggregationProblem(line_state, beta=1e6).solve()
        configs = build_aggregation_configs(line_state, lp)
        generator = TraceGenerator(
            line_state.topology.nodes, line_state.classes,
            spec=TraceSpec(total_sessions=300), seed=16)
        sessions = generator.generate(with_payloads=False)
        emulation = Emulation(line_state, configs,
                              generator.classifier)
        report = emulation.run_scan(sessions, threshold=5)
        assert report.record_hops == 0.0
        assert report.semantically_equivalent
