"""Unit tests for footprint profiling and report wire encoding."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.nids import (
    CostModel,
    ReportDecodeError,
    SignatureEngine,
    apply_cost_model,
    decode_report,
    encode_report,
    encoded_size,
    fit_cost_model,
    profile_engine,
)
from repro.nids.reports import (
    DestinationSetReport,
    FlowTupleReport,
    SourceCountReport,
)
from repro.shim import FiveTuple
from repro.simulation import Session
from repro.traffic.classes import TrafficClass


def make_sessions(count, payload_bytes):
    sessions = []
    for i in range(count):
        session = Session(FiveTuple(6, 100 + i, 1000, 200 + i, 80),
                          "c", ("A",))
        session.add_packet("fwd", payload_bytes + 40,
                           b"x" * payload_bytes)
        sessions.append(session)
    return sessions


class TestCostModelFit:
    def test_recovers_engine_coefficients(self):
        """Profiling a SignatureEngine recovers its true cost model."""
        model = profile_engine(
            lambda: SignatureEngine(patterns=[b"EVIL"],
                                    per_session_cost=100.0,
                                    per_byte_cost=2.0),
            batches=[make_sessions(10, 50), make_sessions(40, 200),
                     make_sessions(25, 10)])
        assert model.per_session == pytest.approx(100.0, rel=1e-6)
        assert model.per_byte == pytest.approx(2.0, rel=1e-6)
        assert model.residual == pytest.approx(0.0, abs=1e-6)

    def test_footprint_prediction(self):
        model = CostModel(per_session=100.0, per_byte=2.0)
        assert model.footprint(500.0) == pytest.approx(1100.0)
        assert model.predict(10, 1000) == pytest.approx(3000.0)

    def test_needs_two_observations(self):
        with pytest.raises(ValueError):
            fit_cost_model([(1.0, 10.0, 20.0)])

    def test_degenerate_batches_rejected(self):
        # Bytes exactly proportional to sessions: rank deficient.
        with pytest.raises(ValueError):
            fit_cost_model([(1.0, 10.0, 20.0), (2.0, 20.0, 40.0),
                            (3.0, 30.0, 60.0)])

    def test_apply_cost_model(self):
        cls = TrafficClass("c", "A", "B", ("A", "B"), 10.0,
                           session_bytes=1000.0)
        model = CostModel(per_session=50.0, per_byte=0.5)
        (updated,) = apply_cost_model([cls], model)
        assert updated.footprint("cpu") == pytest.approx(550.0)
        # Original untouched (frozen dataclass semantics).
        assert cls.footprint("cpu") == 1.0

    def test_payload_fraction(self):
        cls = TrafficClass("c", "A", "B", ("A", "B"), 10.0,
                           session_bytes=1000.0)
        model = CostModel(per_session=0.0, per_byte=1.0)
        (updated,) = apply_cost_model([cls], model,
                                      payload_fraction=0.5)
        assert updated.footprint("cpu") == pytest.approx(500.0)
        with pytest.raises(ValueError):
            apply_cost_model([cls], model, payload_fraction=2.0)


class TestEncoding:
    def test_source_count_roundtrip(self):
        report = SourceCountReport("N1", {5: 3, 7: 12})
        assert decode_report(encode_report(report)) == report

    def test_flow_tuple_roundtrip(self):
        report = FlowTupleReport("node-x",
                                 frozenset({(1, 2), (3, 4)}))
        assert decode_report(encode_report(report)) == report

    def test_destination_set_roundtrip(self):
        report = DestinationSetReport(
            "N2", {1: frozenset({10, 11}), 9: frozenset()})
        assert decode_report(encode_report(report)) == report

    def test_empty_report(self):
        report = SourceCountReport("N1", {})
        assert decode_report(encode_report(report)) == report

    def test_bad_magic_rejected(self):
        data = bytearray(encode_report(SourceCountReport("N", {1: 1})))
        data[0:2] = b"XX"
        with pytest.raises(ReportDecodeError):
            decode_report(bytes(data))

    def test_truncation_rejected(self):
        data = encode_report(SourceCountReport("N", {1: 1, 2: 2}))
        with pytest.raises(ReportDecodeError):
            decode_report(data[:-3])

    def test_encoded_size_tracks_nominal_record_bytes(self):
        """The 16-byte nominal record size in Rec_c matches the wire
        format exactly (modulo the fixed header)."""
        small = SourceCountReport("N1", {1: 1})
        large = SourceCountReport("N1", {i: 1 for i in range(100)})
        delta = encoded_size(large) - encoded_size(small)
        assert delta == 99 * 16

    @settings(max_examples=50, deadline=None)
    @given(counts=st.dictionaries(
        st.integers(min_value=0, max_value=2 ** 64 - 1),
        st.integers(min_value=0, max_value=2 ** 64 - 1),
        max_size=20),
        node=st.text(min_size=1, max_size=10))
    def test_roundtrip_property(self, counts, node):
        report = SourceCountReport(node, counts)
        assert decode_report(encode_report(report)) == report
