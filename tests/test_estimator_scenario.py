"""End-to-end tests for the sketch-estimator closed loop.

The acceptance contract for the streaming estimation subsystem:
the canned ``sketch-estimator`` scenario runs the controller entirely
on count-min estimates, fires at least one sketch-driven drift
refresh, keeps the ingest working set at O(sketch + chunk) — asserted
from measured bytes, not eyeballed — and reproduces bit-identically
run over run.
"""

import dataclasses

import pytest

from repro.obs import MetricsRegistry, use_registry
from repro.runtime.scenario import (
    CANNED_SCENARIOS,
    run_scenario,
    sketch_estimator_scenario,
)


@pytest.fixture(scope="module")
def scenario():
    # internet2 keeps the module fast; the class universe is small
    # but the whole estimator pipeline (pack -> chunked stream ->
    # sketch -> drift trigger -> resolve) is identical to tinet's.
    return sketch_estimator_scenario(topology="internet2", epochs=5)


@pytest.fixture(scope="module")
def outcome(scenario):
    with use_registry(MetricsRegistry()) as metrics:
        report = run_scenario(scenario)
    return report, metrics


class TestEstimatorLoop:
    def test_registered_as_canned_scenario(self):
        assert "sketch-estimator" in CANNED_SCENARIOS

    def test_all_epochs_solve_on_estimates(self, outcome):
        report, _ = outcome
        assert len(report.records) == 5
        assert all(rec.solve_ok for rec in report.records)
        # Estimator bookkeeping present on every epoch record.
        assert all(rec.estimate_l1_rel is not None
                   for rec in report.records)
        assert all(rec.ingest_chunks and rec.ingest_chunks > 0
                   for rec in report.records)

    def test_sketch_driven_drift_refresh_fires(self, outcome):
        report, metrics = outcome
        reasons = [rec.refresh_reason for rec in report.records]
        assert reasons[0] == "bootstrap"
        # The periodic trigger is off in this scenario, so any other
        # refresh is the estimator's drift view firing.
        assert reasons.count("drift") >= 1
        assert metrics.counter_value(
            "runtime.estimator.drift_refreshes") >= 1

    def test_estimates_track_the_feed(self, outcome):
        report, _ = outcome
        # A 2048-wide sketch over a small universe: per-epoch L1
        # error stays in the low percent range.
        assert all(rec.estimate_l1_rel < 0.05
                   for rec in report.records)

    def test_resident_state_is_sketch_plus_chunk(self, outcome,
                                                 scenario):
        report, _ = outcome
        # Per-worker sketch state: class + source tables, int64.
        per_sketch = 2 * scenario.sketch_width * \
            scenario.sketch_depth * 8
        # workers + the snapshot aggregate, plus one in-flight slab
        # (generous per-packet allowance covers session alignment
        # and payload bytes).
        sketches = (scenario.ingest_workers + 1) * per_sketch
        chunk_allowance = 600 * scenario.chunk_packets
        for rec in report.records:
            assert rec.estimator_state_bytes == per_sketch
            assert rec.ingest_max_resident_bytes <= \
                sketches + chunk_allowance
        # And the bound is meaningfully below the full epoch trace
        # (~sessions * packets * payload): the daemon never held the
        # whole epoch.
        full_epoch_floor = scenario.sessions_per_epoch * 400
        assert all(rec.ingest_max_resident_bytes <
                   sketches + full_epoch_floor
                   for rec in report.records)

    def test_fingerprint_reproducible(self, scenario, outcome):
        report, _ = outcome
        again = run_scenario(scenario)
        assert again.fingerprint() == report.fingerprint()

    def test_estimator_validation(self):
        with pytest.raises(ValueError):
            dataclasses.replace(sketch_estimator_scenario(),
                                estimator="bogus")
