"""Integration tests for budgeted compilation: verifier coverage,
kernel/scalar parity, capacity accounting, metrics, and the pinned
tinet acceptance curve (with its JSON artifact).

The module solves tinet's replication LP once; every test below reads
that solution — the budget only changes the lowering.
"""

import json
import pathlib

import numpy as np
import pytest

from repro.analysis.modelcheck import (
    check_budgeted_configs,
    check_shim_configs,
)
from repro.core import MirrorPolicy, ReplicationProblem
from repro.experiments import run_budget_sweep, sweep_to_json
from repro.experiments.common import setup_topology
from repro.obs import MetricsRegistry, use_registry
from repro.runtime.agents import ConfigMessage, MessageKind, NodeAgent
from repro.shim.batch import (
    ACTION_IGNORE,
    ACTION_PROCESS,
    ACTION_REPLICATE,
    BatchShimKernel,
)
from repro.shim.config import (
    ShimAction,
    ShimConfig,
    ShimRule,
    build_replication_configs,
)
from repro.shim.diff import diff_configs
from repro.shim.ranges import HashRange, compile_hash_ranges

GOLDEN = pathlib.Path(__file__).parent / "golden"
RESULTS = pathlib.Path(__file__).parent.parent / "benchmarks" / \
    "results"


@pytest.fixture(scope="module")
def tinet():
    setup = setup_topology("tinet", dc_capacity_factor=10.0)
    result = ReplicationProblem(
        setup.state,
        mirror_policy=MirrorPolicy.datacenter_plus_neighbors(1),
        max_link_load=0.4).solve()
    return setup.state, result


class TestModelcheckIntegration:
    @pytest.mark.parametrize("budget", [1, 2, 4, None])
    def test_compiled_tables_verify_clean(self, tinet, budget):
        """SHIM003/SHIM004 pass on every budget the compiler emits:
        exact hash-space tiling, within-budget tables."""
        state, result = tinet
        configs = build_replication_configs(state, result,
                                            budget=budget)
        assert check_shim_configs(configs) == []
        assert check_budgeted_configs(configs, budget) == []

    def test_missing_owner_is_detected(self, tinet):
        """Removing a class's only PROCESS rule leaves a hash-space
        gap that SHIM003 must flag."""
        state, result = tinet
        configs = build_replication_configs(state, result, budget=2)
        for config in configs.values():
            for rules in config.rules.values():
                procs = [r for r in rules
                         if r.action is ShimAction.PROCESS
                         and r.hash_range.width > 0]
                if procs:
                    rules.remove(procs[0])
                    findings = check_budgeted_configs(configs, 2)
                    assert any(f.rule_id == "SHIM003"
                               for f in findings)
                    return
        pytest.fail("no PROCESS rule found to mutate")

    def test_over_budget_table_is_detected(self, tinet):
        state, result = tinet
        configs = build_replication_configs(state, result, budget=1)
        for config in configs.values():
            for cls, rules in config.rules.items():
                if rules:
                    half = rules[0].hash_range.start + \
                        rules[0].hash_range.width / 2
                    rules.append(ShimRule(
                        cls, HashRange(("extra",),
                                       rules[0].hash_range.start,
                                       half),
                        rules[0].action, target=rules[0].target))
                    findings = check_budgeted_configs(configs, 1)
                    assert any(f.rule_id == "SHIM004"
                               for f in findings)
                    return
        pytest.fail("no rule bucket found to mutate")

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError, match="budget"):
            check_budgeted_configs({}, 0)


class TestKernelScalarParity:
    @pytest.mark.parametrize("budget", [1, 2, 4, None])
    def test_batch_decisions_match_scalar(self, tinet, budget):
        """The vectorized kernel and ShimConfig.decide agree on every
        sampled (node, class, hash) under budgeted tables."""
        state, result = tinet
        configs = build_replication_configs(state, result,
                                            budget=budget)
        class_names = [cls.name for cls in state.classes]
        node_order = list(state.topology.nodes)
        kernel = BatchShimKernel(configs, class_names, node_order)
        if budget is not None:
            assert kernel.max_table_rules <= budget

        rng = np.random.default_rng(17)
        count = 600
        node_ids = rng.integers(0, len(node_order), count)
        class_ids = rng.integers(0, len(class_names), count)
        hashes = rng.random(count)
        directions = np.zeros(count, dtype=np.int64)
        mode = next(iter(kernel.modes_used))
        actions, targets = kernel.decide(
            node_ids, class_ids, directions, {mode: hashes})

        for i in range(count):
            config = configs[node_order[node_ids[i]]]
            rule = config.decide(class_names[class_ids[i]],
                                 hashes[i], "fwd")
            if rule is None:
                assert actions[i] == ACTION_IGNORE
                assert targets[i] == -1
            elif rule.action is ShimAction.PROCESS:
                assert actions[i] == ACTION_PROCESS
            else:
                assert actions[i] == ACTION_REPLICATE
                assert node_order[targets[i]] == rule.target

    def test_budget_none_matches_unbudgeted_builder(self, tinet):
        """budget=None is the exact compile: bit-identical configs to
        the original builder path."""
        state, result = tinet
        assert build_replication_configs(state, result) == \
            build_replication_configs(state, result, budget=None)


class TestCapacityAccounting:
    def _config(self, node, widths):
        """A config with one positive-width rule per entry."""
        ranges = compile_hash_ranges(
            [(f"k{i}", w) for i, w in enumerate(widths)],
            require_full_coverage=False)
        return ShimConfig(node=node, rules={"c": [
            ShimRule("c", rng, ShimAction.PROCESS)
            for rng in ranges]})

    def test_agent_accepts_exactly_budget_rules(self):
        budget = 4
        config = self._config("A", [0.1] * budget)
        agent = NodeAgent("A", {"cpu": 1.0}, rule_capacity=budget)
        ack = agent.deliver(ConfigMessage(
            MessageKind.INSTALL, 1, "A", config), now=0.0)
        assert ack.ok
        assert agent.effective_config() is config

    def test_agent_refuses_budget_plus_one(self):
        """The regression the accounting fix pins: one rule over the
        table capacity is refused, not silently truncated."""
        budget = 4
        config = self._config("A", [0.1] * (budget + 1))
        agent = NodeAgent("A", {"cpu": 1.0}, rule_capacity=budget)
        ack = agent.deliver(ConfigMessage(
            MessageKind.INSTALL, 1, "A", config), now=0.0)
        assert not ack.ok
        assert agent.effective_config() is None

    def test_zero_width_rules_occupy_no_capacity(self):
        """num_rules counts installable rules only — zero-width
        ranges can never match and must not consume table space."""
        budget = 4
        config = self._config("A", [0.1] * budget)
        config.rules["c"].append(ShimRule(
            "c", HashRange(("pad",), 0.9, 0.9), ShimAction.PROCESS))
        assert config.num_rules == budget
        agent = NodeAgent("A", {"cpu": 1.0}, rule_capacity=budget)
        ack = agent.deliver(ConfigMessage(
            MessageKind.INSTALL, 1, "A", config), now=0.0)
        assert ack.ok


class TestBudgetMetrics:
    def test_budgeted_compile_publishes_metrics(self, tinet):
        state, result = tinet
        with use_registry(MetricsRegistry()) as registry:
            build_replication_configs(state, result, budget=2)
            errors = registry.histogram("shim.coverage_error")
            rules = registry.histogram("shim.rules_per_node")
        assert errors is not None and errors.count > 0
        assert rules is not None and rules.count > 0
        assert max(errors.samples) > 0.0  # budget 2 is lossy on tinet

    def test_diff_publishes_rollout_churn_metrics(self, tinet):
        state, result = tinet
        old = build_replication_configs(state, result, budget=2)
        new = build_replication_configs(state, result, budget=4)
        with use_registry(MetricsRegistry()) as registry:
            diff_configs(old, new)
            delta = registry.histogram("rollout.delta_rules")
            fraction = registry.histogram("rollout.delta_fraction")
        assert delta is not None and delta.count == 1
        assert fraction is not None
        assert 0.0 < fraction.samples[0] <= 2.0


class TestBudgetCurveGolden:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_budget_sweep(["tinet"],
                                budgets=(1, 2, 4, 8, None))

    def test_matches_golden_curve(self, sweep):
        """The tinet budget curve is pinned: any drift in the LP, the
        lowering, or the realized-load accounting shows up here."""
        golden = json.loads(
            (GOLDEN / "budget_curve_tinet.json").read_text())
        current = json.loads(sweep_to_json(sweep))
        assert current["schema"] == golden["schema"]
        gold_series = golden["series"][0]
        cur_series = current["series"][0]
        assert cur_series["topology"] == gold_series["topology"]
        assert cur_series["lp_load_cost"] == pytest.approx(
            gold_series["lp_load_cost"], abs=1e-6)
        for cur_pt, gold_pt in zip(cur_series["points"],
                                   gold_series["points"],
                                   strict=True):
            assert cur_pt["budget"] == gold_pt["budget"]
            for field in ("error_linf", "error_l1", "max_node_load",
                          "max_link_load"):
                assert cur_pt[field] == pytest.approx(
                    gold_pt[field], abs=1e-6), (cur_pt["budget"],
                                                field)
            for field in ("total_rules", "max_rules_per_node",
                          "max_table_rules"):
                assert cur_pt[field] == gold_pt[field]

    def test_error_monotone_and_anchored(self, sweep):
        points = sweep[0].points
        errors = [pt.error_linf for pt in points]
        assert errors == sorted(errors, reverse=True)
        assert points[-1].budget is None
        assert points[-1].error_linf == pytest.approx(0.0, abs=1e-6)

    def test_acceptance_budget_8_linf_within_5_percent(self, sweep):
        """The paper-repro acceptance bar: on tinet a rule budget of
        8 per node/class keeps the Linf coverage error within 5% of
        the LP fractions. The sweep JSON is written as the artifact
        backing the claim."""
        series = sweep[0]
        assert series.point(8).error_linf <= 0.05
        RESULTS.mkdir(exist_ok=True)
        (RESULTS / "budget_acceptance.json").write_text(
            sweep_to_json(sweep) + "\n")
