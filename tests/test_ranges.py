"""Unit tests for hash-range compilation (Section 7.1)."""

import pytest

from repro.shim import HashRange, compile_hash_ranges
from repro.shim.ranges import lookup


class TestHashRange:
    def test_contains_half_open(self):
        rng = HashRange("k", 0.2, 0.5)
        assert not rng.contains(0.19999)
        assert rng.contains(0.2)
        assert rng.contains(0.49999)
        assert not rng.contains(0.5)

    def test_width(self):
        assert HashRange("k", 0.25, 0.75).width == pytest.approx(0.5)


class TestCompile:
    def test_full_coverage_layout(self):
        ranges = compile_hash_ranges([("a", 0.25), ("b", 0.5),
                                      ("c", 0.25)])
        assert [r.key for r in ranges] == ["a", "b", "c"]
        assert ranges[0].start == 0.0
        assert ranges[-1].end == 1.0
        # Contiguous, non-overlapping.
        for left, right in zip(ranges, ranges[1:]):
            assert left.end == pytest.approx(right.start)

    def test_zero_fractions_skipped(self):
        ranges = compile_hash_ranges([("a", 0.0), ("b", 1.0)])
        assert [r.key for r in ranges] == ["b"]

    def test_rounding_snapped_to_one(self):
        thirds = [("a", 1 / 3), ("b", 1 / 3), ("c", 1 / 3)]
        ranges = compile_hash_ranges(thirds)
        assert ranges[-1].end == 1.0

    def test_partial_coverage_allowed(self):
        ranges = compile_hash_ranges([("a", 0.3)],
                                     require_full_coverage=False)
        assert len(ranges) == 1
        assert ranges[0].end == pytest.approx(0.3)

    def test_under_coverage_rejected_when_required(self):
        with pytest.raises(ValueError):
            compile_hash_ranges([("a", 0.5)])

    def test_over_coverage_rejected(self):
        with pytest.raises(ValueError):
            compile_hash_ranges([("a", 0.7), ("b", 0.7)])

    def test_negative_fraction_rejected(self):
        with pytest.raises(ValueError):
            compile_hash_ranges([("a", -0.1), ("b", 1.1)])

    def test_tiny_negative_noise_tolerated(self):
        """LP solutions carry float noise like -1e-12."""
        ranges = compile_hash_ranges([("a", -1e-12), ("b", 1.0)])
        assert [r.key for r in ranges] == ["b"]

    def test_every_point_owned_exactly_once(self):
        ranges = compile_hash_ranges([("a", 0.2), ("b", 0.3),
                                      ("c", 0.5)])
        for i in range(100):
            value = i / 100.0
            owners = [r.key for r in ranges if r.contains(value)]
            assert len(owners) == 1

    def test_lookup(self):
        ranges = compile_hash_ranges([("a", 0.5), ("b", 0.5)])
        assert lookup(ranges, 0.25) == "a"
        assert lookup(ranges, 0.75) == "b"
        gap = compile_hash_ranges([("a", 0.3)],
                                  require_full_coverage=False)
        assert lookup(gap, 0.9) is None

    def test_empty_input(self):
        assert compile_hash_ranges([], require_full_coverage=False) == []
