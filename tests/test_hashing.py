"""Unit tests for the bidirectional shim hash (Section 7.2)."""

import pytest

from repro.shim import (
    FiveTuple,
    bob_hash,
    canonical_five_tuple,
    field_hash,
    session_hash,
)


@pytest.fixture
def tup():
    return FiveTuple(proto=6, src_ip=0x0A010001, src_port=12345,
                     dst_ip=0x0A020001, dst_port=80)


class TestBobHash:
    def test_deterministic(self):
        assert bob_hash(1, 2, 3) == bob_hash(1, 2, 3)

    def test_word_count_matters(self):
        assert bob_hash(1, 2) != bob_hash(1, 2, 0)

    def test_seed_changes_value(self):
        assert bob_hash(1, 2, 3, seed=0) != bob_hash(1, 2, 3, seed=1)

    def test_output_is_32_bit(self):
        for words in [(0,), (1, 2, 3, 4, 5, 6, 7), (2**31,)]:
            value = bob_hash(*words)
            assert 0 <= value < 2 ** 32

    def test_avalanche(self):
        """Single-bit input changes flip roughly half the output bits."""
        flips = []
        for bit in range(16):
            a = bob_hash(0x1234, 0x5678)
            b = bob_hash(0x1234 ^ (1 << bit), 0x5678)
            flips.append(bin(a ^ b).count("1"))
        assert 8 <= sum(flips) / len(flips) <= 24


class TestCanonicalization:
    def test_already_canonical(self, tup):
        assert canonical_five_tuple(tup) == tup

    def test_reversed_becomes_canonical(self, tup):
        assert canonical_five_tuple(tup.reversed()) == tup

    def test_port_breaks_ip_tie(self):
        tup = FiveTuple(6, 100, 9999, 100, 80)
        canon = canonical_five_tuple(tup)
        assert (canon.src_port, canon.dst_port) == (80, 9999)


class TestSessionHash:
    def test_in_unit_interval(self, tup):
        assert 0.0 <= session_hash(tup) < 1.0

    def test_bidirectional(self, tup):
        assert session_hash(tup) == session_hash(tup.reversed())

    def test_differs_across_sessions(self, tup):
        other = tup._replace(src_port=54321)
        assert session_hash(tup) != session_hash(other)

    def test_uniformity(self):
        """Hashes of many sessions spread evenly over [0, 1)."""
        values = [session_hash(FiveTuple(6, i, 1000 + i, 99, 80))
                  for i in range(2000)]
        buckets = [0] * 10
        for v in values:
            buckets[int(v * 10)] += 1
        assert min(buckets) > 120  # ~200 expected per bucket

    def test_seed_independence(self, tup):
        assert session_hash(tup, seed=1) != session_hash(tup, seed=2)


class TestFieldHash:
    def test_in_unit_interval(self):
        assert 0.0 <= field_hash(42) < 1.0

    def test_deterministic(self):
        assert field_hash(42) == field_hash(42)

    def test_distinct_fields_differ(self):
        assert field_hash(42) != field_hash(43)
