"""Unit tests for the named architecture presets and extensions."""

import pytest

from repro.core import (
    ArchitectureEvaluator,
    ArchitectureKind,
    evaluate_architecture,
    ingress_result,
)
from repro.core.extensions import (
    FORTZ_THORUP_SEGMENTS,
    max_miss_objective,
    piecewise_link_cost,
    weighted_load_objective,
)
from repro.lpsolve import Model


@pytest.fixture
def evaluator(line_topology, line_classes):
    return ArchitectureEvaluator(line_topology, line_classes,
                                 dc_capacity_factor=10.0,
                                 max_link_load=0.4)


class TestIngressResult:
    def test_max_load_one_by_construction(self, line_state):
        result = ingress_result(line_state)
        assert result.load_cost == pytest.approx(1.0)

    def test_fractions_at_gateways(self, line_state):
        result = ingress_result(line_state)
        for cls in line_state.classes:
            assert result.process_fractions[cls.name] == \
                {cls.ingress: 1.0}

    def test_link_loads_are_background(self, line_state):
        result = ingress_result(line_state)
        for link, load in result.link_loads.items():
            assert load == pytest.approx(line_state.bg_load(link))


class TestEvaluator:
    def test_ordering_matches_paper(self, evaluator):
        """Figure 13's ordering: replicate <= no-replicate <= ingress."""
        ingress = evaluator.evaluate(ArchitectureKind.INGRESS)
        no_rep = evaluator.evaluate(ArchitectureKind.PATH_NO_REPLICATE)
        rep = evaluator.evaluate(ArchitectureKind.PATH_REPLICATE)
        assert rep.load_cost <= no_rep.load_cost + 1e-9
        assert no_rep.load_cost <= ingress.load_cost + 1e-9

    def test_dc_plus_one_hop_at_least_as_good_as_dc(self, evaluator):
        dc = evaluator.evaluate(ArchitectureKind.PATH_REPLICATE)
        both = evaluator.evaluate(ArchitectureKind.DC_PLUS_ONE_HOP)
        assert both.load_cost <= dc.load_cost + 1e-9

    def test_two_hop_at_least_as_good_as_one_hop(self, evaluator):
        one = evaluator.evaluate(ArchitectureKind.ONE_HOP)
        two = evaluator.evaluate(ArchitectureKind.TWO_HOP)
        assert two.load_cost <= one.load_cost + 1e-9

    def test_augmented_uses_spread_capacity(self, evaluator):
        plain = evaluator.evaluate(ArchitectureKind.PATH_NO_REPLICATE)
        augmented = evaluator.evaluate(ArchitectureKind.PATH_AUGMENTED)
        assert augmented.load_cost < plain.load_cost

    def test_alternate_traffic_uses_fixed_provisioning(self, evaluator,
                                                       line_classes):
        doubled = [c.scaled(2.0) for c in line_classes]
        base = evaluator.evaluate(ArchitectureKind.INGRESS)
        heavy = evaluator.evaluate(ArchitectureKind.INGRESS,
                                   classes=doubled)
        assert heavy.load_cost == pytest.approx(2 * base.load_cost)

    def test_one_shot_wrapper(self, line_topology, line_classes):
        result = evaluate_architecture(
            ArchitectureKind.PATH_REPLICATE, line_topology,
            line_classes, dc_capacity_factor=10.0, max_link_load=0.4)
        assert result.load_cost < 1.0
        assert result.dc_node is not None


class TestExtensions:
    def test_piecewise_cost_matches_fortz_thorup(self):
        """phi equals the piecewise function at a few known points."""
        def closed_form(u):
            cost, prev_slope, prev_start = 0.0, 0.0, 0.0
            best = 0.0
            for slope, start in FORTZ_THORUP_SEGMENTS:
                cost += prev_slope * (start - prev_start)
                best = max(best, slope * (u - start) + cost)
                prev_slope, prev_start = slope, start
            return best

        for u in (0.1, 0.5, 0.95, 1.05):
            m = Model()
            x = m.add_variable("x", lb=u, ub=u)
            phi = piecewise_link_cost(m, x + 0.0, "l")
            m.minimize(phi)
            sol = m.solve()
            assert sol.value(phi) == pytest.approx(closed_form(u),
                                                   rel=1e-6)

    def test_piecewise_cost_convex_increasing(self):
        values = []
        for u in (0.2, 0.5, 0.8, 1.0, 1.2):
            m = Model()
            x = m.add_variable("x", lb=u, ub=u)
            phi = piecewise_link_cost(m, x + 0.0, "l")
            m.minimize(phi)
            values.append(m.solve().value(phi))
        assert values == sorted(values)
        # Steeply super-linear past utilization 1.
        assert values[-1] > 10 * values[1]

    def test_weighted_load_objective(self):
        m = Model()
        x = m.add_variable("x", lb=1, ub=1)
        exprs = {("cpu", "A"): x + 0.0, ("cpu", "B"): 2 * x}
        expr = weighted_load_objective(m, exprs,
                                       weights={("cpu", "A"): 1.0,
                                                ("cpu", "B"): 0.5})
        m.minimize(expr)
        assert m.solve().objective_value == pytest.approx(2.0)

    def test_max_miss_objective(self):
        m = Model()
        cov = {"a": m.add_variable("cov_a", lb=0.2, ub=0.2),
               "b": m.add_variable("cov_b", lb=0.9, ub=0.9)}
        worst = max_miss_objective(m, cov)
        m.minimize(worst)
        assert m.solve().value(worst) == pytest.approx(0.8)

    def test_replication_with_piecewise_link_cost(self, line_state_dc):
        from repro.core import MirrorPolicy, ReplicationProblem

        hard = ReplicationProblem(
            line_state_dc, mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=0.4).solve()
        soft = ReplicationProblem(
            line_state_dc, mirror_policy=MirrorPolicy.datacenter(),
            link_cost_weight=1e-3).solve()
        # The soft version still replicates and keeps load comparable.
        assert soft.load_cost <= 1.0
        assert soft.load_cost == pytest.approx(hard.load_cost,
                                               abs=0.25)
