"""Property-based tests for the LP substrate (hypothesis)."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.lpsolve import Model, lin_sum

finite = st.floats(min_value=-100, max_value=100, allow_nan=False)
positive = st.floats(min_value=0.1, max_value=100, allow_nan=False)


class TestExpressionAlgebra:
    @given(a=finite, b=finite, c=finite)
    def test_scaling_distributes(self, a, b, c):
        m = Model()
        x = m.add_variable("x")
        left = c * (a * x + b)
        right = (c * a) * x + c * b
        assert left.coefficient(x) == pytest.approx(right.coefficient(x))
        assert left.constant == pytest.approx(right.constant)

    @given(values=st.lists(finite, min_size=1, max_size=20))
    def test_lin_sum_constant_total(self, values):
        expr = lin_sum(values)
        assert expr.constant == pytest.approx(sum(values))

    @given(coeffs=st.lists(finite, min_size=1, max_size=10))
    def test_sum_order_invariant(self, coeffs):
        m = Model()
        xs = [m.add_variable(f"x{i}") for i in range(len(coeffs))]
        terms = [c * x for c, x in zip(coeffs, xs)]
        forward = lin_sum(terms)
        backward = lin_sum(reversed(terms))
        for x in xs:
            assert forward.coefficient(x) == pytest.approx(
                backward.coefficient(x))


class TestSolverProperties:
    @settings(max_examples=25, deadline=None)
    @given(target=positive, weights=st.lists(positive, min_size=2,
                                             max_size=6))
    def test_weighted_cover_picks_cheapest(self, target, weights):
        """min sum w_i x_i  s.t. sum x_i == 1, x in [0,1]: the optimum
        puts everything on the smallest weight."""
        m = Model()
        xs = [m.add_variable(f"x{i}", lb=0, ub=1)
              for i in range(len(weights))]
        m.add_constraint(lin_sum(xs) == 1)
        m.minimize(lin_sum(w * x for w, x in zip(weights, xs)))
        sol = m.solve()
        assert sol.objective_value == pytest.approx(min(weights),
                                                    rel=1e-6)

    @settings(max_examples=25, deadline=None)
    @given(demands=st.lists(positive, min_size=2, max_size=6))
    def test_min_max_balances_perfectly_when_unconstrained(self, demands):
        """Splitting divisible demand over identical servers: the
        min-max equals total/num_servers."""
        total = sum(demands)
        servers = 3
        m = Model()
        z = m.add_variable("z")
        shares = {}
        for i, demand in enumerate(demands):
            shares[i] = [m.add_variable(f"s{i}_{j}", lb=0, ub=1)
                         for j in range(servers)]
            m.add_constraint(lin_sum(shares[i]) == 1)
        for j in range(servers):
            load = lin_sum(demands[i] * shares[i][j]
                           for i in range(len(demands)))
            m.add_constraint(z >= load)
        m.minimize(z)
        sol = m.solve()
        assert sol.objective_value == pytest.approx(total / servers,
                                                    rel=1e-6)

    @settings(max_examples=25, deadline=None)
    @given(bound=st.floats(min_value=0.5, max_value=5.0,
                           allow_nan=False))
    def test_optimum_monotone_in_relaxation(self, bound):
        """Relaxing a <= bound constraint never worsens the optimum."""
        def solve_with(b):
            m = Model()
            x = m.add_variable("x", lb=0)
            y = m.add_variable("y", lb=0)
            m.add_constraint(x + y >= 4)
            m.add_constraint(x <= b)
            m.minimize(x + 2 * y)
            return m.solve().objective_value

        tight = solve_with(bound)
        loose = solve_with(bound * 2)
        assert loose <= tight + 1e-7

    @settings(max_examples=20, deadline=None)
    @given(seed_weights=st.lists(positive, min_size=3, max_size=5))
    def test_solution_satisfies_all_constraints(self, seed_weights):
        m = Model()
        xs = [m.add_variable(f"x{i}", lb=0, ub=2)
              for i in range(len(seed_weights))]
        m.add_constraint(lin_sum(xs) >= 1)
        m.add_constraint(lin_sum(xs) <= len(xs))
        m.minimize(lin_sum(w * x for w, x in zip(seed_weights, xs)))
        sol = m.solve()
        values = sol.values()
        for con in m.constraints:
            assert con.violation(values) < 1e-6
