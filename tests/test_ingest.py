"""Tests for the streaming ingestion daemon."""

import numpy as np
import pytest

from repro.ingest import IngestDaemon, chunk_resident_bytes
from repro.obs import MetricsRegistry, use_registry
from repro.runtime.events import EventLoop
from repro.simulation.tracegen import TraceGenerator, TraceSpec
from repro.simulation.tracestore import ChunkedReplay
from repro.traffic.matrix import EstimatedTrafficMatrix


@pytest.fixture
def batch(line_state_dc):
    generator = TraceGenerator(
        line_state_dc.topology.nodes, line_state_dc.classes,
        spec=TraceSpec(total_sessions=600), seed=17)
    return generator.generate_batch(
        tuple(line_state_dc.nids_nodes), direct=True)


@pytest.fixture
def daemon(line_state_dc):
    names = [cls.name for cls in line_state_dc.classes]
    return IngestDaemon(names, width=256, depth=4, seed=5, workers=3)


def exact_counts(batch):
    class_id = np.asarray(batch.sessions.class_id)
    counts = np.bincount(class_id[class_id >= 0],
                         minlength=len(batch.sessions.class_names))
    return {name: float(c) for name, c
            in zip(batch.sessions.class_names, counts)}


class TestConsume:
    def test_chunked_stream_counts_each_session_once(self, daemon,
                                                     batch):
        replay = ChunkedReplay(batch, 64)
        for chunk in replay:
            daemon.consume(chunk)
        snapshot = daemon.snapshot()
        errors = snapshot.estimate_errors(exact_counts(batch))
        # 600 sessions in a 256x4 sketch: collisions are unlikely and
        # one-sided; the chunked fold must agree with the exact
        # per-class counts almost everywhere.
        assert errors["l1_rel"] < 0.05
        assert daemon.stats.chunks == replay.num_chunks
        assert daemon.stats.packets == batch.num_packets
        assert daemon.stats.sessions == batch.sessions.num_sessions

    def test_round_robin_spreads_chunks(self, daemon, batch):
        chunks = list(ChunkedReplay(batch, 64))
        assert len(chunks) >= 3
        for chunk in chunks:
            daemon.consume(chunk)
        assert all(worker.sessions > 0
                   for worker in daemon.workers)

    def test_resident_accounting_is_sketch_plus_chunk(self, daemon,
                                                      batch):
        chunks = list(ChunkedReplay(batch, 64))
        for chunk in chunks:
            daemon.consume(chunk)
        biggest = max(chunk_resident_bytes(c) for c in chunks)
        assert daemon.stats.max_resident_bytes <= \
            daemon.sketch_bytes + biggest
        # And far below the whole batch: the bound is the point.
        assert daemon.stats.max_resident_bytes < \
            daemon.sketch_bytes + chunk_resident_bytes(batch)

    def test_snapshot_does_not_perturb_workers(self, daemon, batch):
        chunk = next(iter(ChunkedReplay(batch, 64)))
        daemon.consume(chunk)
        before = [worker.sessions for worker in daemon.workers]
        first = daemon.snapshot()
        second = daemon.snapshot()
        assert [w.sessions for w in daemon.workers] == before
        assert np.array_equal(first.class_volumes(),
                              second.class_volumes())

    def test_workers_validation(self):
        with pytest.raises(ValueError):
            IngestDaemon(["x->y"], seed=1, workers=0)


class TestStream:
    def test_stream_is_lazy_and_paced(self, daemon, batch):
        consumed = []

        def chunk_feed():
            for chunk in ChunkedReplay(batch, 64):
                consumed.append(loop.now)
                yield chunk

        loop = EventLoop()
        daemon.stream(loop, chunk_feed(), start=10.0, interval=2.0)
        assert consumed == []  # nothing pulled before the loop runs
        loop.run_until(10.0)
        assert len(consumed) == 1
        loop.run_all()
        replay = ChunkedReplay(batch, 64)
        assert daemon.stats.chunks == replay.num_chunks
        # One chunk per firing, interval apart, starting at start.
        assert daemon.stats.window_start == pytest.approx(10.0)
        assert daemon.stats.window_end == pytest.approx(
            10.0 + 2.0 * (replay.num_chunks - 1))
        assert daemon.stats.packets_per_second() is not None

    def test_interval_validation(self, daemon):
        with pytest.raises(ValueError):
            daemon.stream(EventLoop(), iter([]), interval=0.0)


class TestEmit:
    def test_emit_returns_estimated_matrix(self, daemon, batch,
                                           line_state_dc):
        emitted = []
        daemon.on_estimate = emitted.append
        for chunk in ChunkedReplay(batch, 128):
            daemon.consume(chunk)
        matrix = daemon.emit(list(line_state_dc.classes), scale=2.0)
        assert isinstance(matrix, EstimatedTrafficMatrix)
        assert emitted == [matrix]
        assert daemon.stats.emits == 1
        assert matrix.scale == pytest.approx(2.0)
        assert matrix.sessions_observed == daemon.stats.sessions

    def test_estimated_classes_match_template_order(self, daemon,
                                                    batch,
                                                    line_state_dc):
        for chunk in ChunkedReplay(batch, 128):
            daemon.consume(chunk)
        template = list(line_state_dc.classes)
        estimated = daemon.estimated_classes(template, scale=1.0)
        assert [cls.name for cls in estimated] == \
            [cls.name for cls in template]

    def test_metrics_are_emitted(self, daemon, batch,
                                 line_state_dc):
        with use_registry(MetricsRegistry()) as metrics:
            for chunk in ChunkedReplay(batch, 128):
                daemon.consume(chunk, now=float(daemon.stats.chunks))
            daemon.emit(list(line_state_dc.classes))
            assert metrics.counter_value("ingest.chunks") > 0
            assert metrics.counter_value("ingest.packets") == \
                batch.num_packets
            assert metrics.counter_value("ingest.emits") == 1
            assert metrics.counter_value("sketch.merges") == \
                len(daemon.workers)
            assert metrics.gauge_value("ingest.resident_bytes") > 0


class TestWindows:
    def test_begin_window_resets_but_keeps_high_water(self, daemon,
                                                      batch):
        for chunk in ChunkedReplay(batch, 64):
            daemon.consume(chunk)
        high_water = daemon.stats.max_resident_bytes
        assert high_water > 0
        daemon.begin_window()
        assert daemon.stats.chunks == 0
        assert daemon.stats.sessions == 0
        assert daemon.stats.max_resident_bytes == high_water
        assert all(worker.sessions == 0 for worker in daemon.workers)
        snapshot = daemon.snapshot()
        assert int(snapshot.class_volumes().sum()) == 0
