"""Tests for the shard-gap experiment (sharded vs global LP).

This also carries the pinned acceptance bar for the sharded control
plane: on tinet with 2 regions (seed 0, DC capacity factor 1.0) the
merged sharded assignment must land within 10% of the global LoadCost
using at most 5 coordination rounds.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments import (
    format_shard_gap,
    run_shard_gap,
    shard_gap_to_json,
)


@pytest.fixture(scope="module")
def tinet_series():
    (series,) = run_shard_gap(topologies=["tinet"], regions=(2,),
                              jobs=1)
    return series


class TestAcceptanceBar:
    def test_gap_within_ten_percent(self, tinet_series):
        point = tinet_series.point(2)
        assert point.gap <= 0.10
        assert point.load_cost >= tinet_series.global_load_cost - 1e-9

    def test_coordination_rounds_bounded(self, tinet_series):
        assert 1 <= tinet_series.point(2).rounds <= 5

    def test_partition_covers_topology(self, tinet_series):
        point = tinet_series.point(2)
        assert len(point.region_sizes) == 2
        assert all(size >= 1 for size in point.region_sizes)
        assert point.lp_solves >= 2  # at least one solve per region

    def test_series_metadata(self, tinet_series):
        assert tinet_series.topology == "tinet"
        assert tinet_series.mirror == "dc"
        assert tinet_series.global_load_cost > 0
        assert tinet_series.global_wall_seconds > 0
        point = tinet_series.point(2)
        assert point.solve_wall_seconds > 0
        assert point.speedup > 0


class TestArtifacts:
    def test_json_schema(self, tinet_series):
        payload = json.loads(shard_gap_to_json([tinet_series]))
        assert payload["schema"] == 1
        assert payload["experiment"] == "shard-gap"
        (entry,) = payload["series"]
        assert entry["topology"] == "tinet"
        (point,) = entry["points"]
        assert set(point) == {"regions", "load_cost", "gap", "rounds",
                              "lp_solves", "region_sizes",
                              "solve_wall_seconds", "speedup"}

    def test_table_render(self, tinet_series):
        table = format_shard_gap([tinet_series])
        assert "sharded control plane on tinet" in table
        assert "Rounds" in table
        assert "Speedup" in table

    def test_unknown_point_raises(self, tinet_series):
        with pytest.raises(KeyError):
            tinet_series.point(7)


class TestValidation:
    def test_unknown_mirror(self):
        with pytest.raises(ValueError):
            run_shard_gap(topologies=["tinet"], mirror="teleport")

    def test_empty_regions(self):
        with pytest.raises(ValueError):
            run_shard_gap(topologies=["tinet"], regions=())

    def test_bad_region_count(self):
        with pytest.raises(ValueError):
            run_shard_gap(topologies=["tinet"], regions=(0,))

    def test_gap_gauge_published(self, tinet_series):
        from repro.obs import MetricsRegistry, use_registry

        with use_registry(MetricsRegistry()) as metrics:
            run_shard_gap(topologies=["tinet"], regions=(2,), jobs=1)
            gauges = metrics.snapshot()["gauges"]
        assert "controller.shard.gap" in gauges
