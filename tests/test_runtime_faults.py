"""Tests for the fault-injection schedule and cumulative fault state."""

import pytest

from repro.runtime.faults import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    NetworkFaultState,
    cascading_failure_schedule,
    flash_crowd_schedule,
)


class TestFaultEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(-1, FaultKind.NODE_DOWN, "A")
        with pytest.raises(ValueError):
            FaultEvent(0, FaultKind.NODE_DOWN)  # no target
        with pytest.raises(ValueError):
            FaultEvent(0, FaultKind.TRAFFIC_SURGE, "*", factor=0.0)

    def test_describe(self):
        assert "node-down A" in FaultEvent(
            0, FaultKind.NODE_DOWN, "A").describe()
        assert "surge" in FaultEvent(
            0, FaultKind.TRAFFIC_SURGE, "A->", factor=2.0,
            duration_epochs=3).describe()


class TestFaultSchedule:
    def test_at_epoch_and_ordering(self):
        schedule = FaultSchedule([
            FaultEvent(4, FaultKind.NODE_UP, "A"),
            FaultEvent(1, FaultKind.NODE_DOWN, "A"),
            FaultEvent(1, FaultKind.NODE_DOWN, "B"),
        ])
        assert len(schedule) == 3
        assert [e.target for e in schedule.at_epoch(1)] == ["A", "B"]
        assert schedule.at_epoch(2) == []
        assert schedule.last_epoch() == 4

    def test_builders(self):
        cascade = cascading_failure_schedule(
            ["A", "B"], start_epoch=2, spacing=3, recover_epoch=9)
        downs = [e for e in cascade.events
                 if e.kind is FaultKind.NODE_DOWN]
        ups = [e for e in cascade.events if e.kind is FaultKind.NODE_UP]
        assert [(e.epoch, e.target) for e in downs] == [(2, "A"),
                                                        (5, "B")]
        assert {e.epoch for e in ups} == {9}

        crowd = flash_crowd_schedule("A->", 4.0, start_epoch=1,
                                     duration_epochs=2)
        (event,) = crowd.events
        assert event.kind is FaultKind.TRAFFIC_SURGE
        assert event.factor == 4.0


class TestNetworkFaultState:
    def test_node_down_then_up(self, line_state):
        fault_state = NetworkFaultState()
        fault_state.apply(FaultEvent(0, FaultKind.NODE_DOWN, "B"),
                          line_state)
        assert fault_state.dead_nodes == ["B"]
        sig_down = fault_state.structural_signature()
        fault_state.apply(FaultEvent(1, FaultKind.NODE_UP, "B"),
                          line_state)
        assert fault_state.dead_nodes == []
        assert fault_state.structural_signature() != sig_down

    def test_dc_outage_targets_the_dc(self, line_state_dc):
        fault_state = NetworkFaultState()
        fault_state.apply(FaultEvent(0, FaultKind.DC_OUTAGE),
                          line_state_dc)
        assert fault_state.dead_nodes == [line_state_dc.dc_node]

    def test_dc_outage_without_dc_rejected(self, line_state):
        with pytest.raises(ValueError):
            NetworkFaultState().apply(
                FaultEvent(0, FaultKind.DC_OUTAGE), line_state)

    def test_surge_scales_matching_classes(self, line_state):
        fault_state = NetworkFaultState()
        fault_state.apply(FaultEvent(
            0, FaultKind.TRAFFIC_SURGE, "A->", factor=3.0,
            duration_epochs=2), line_state)
        scaled = fault_state.scale_classes(line_state.classes)
        by_name = {cls.name: cls for cls in scaled}
        base = {cls.name: cls for cls in line_state.classes}
        assert by_name["A->D"].num_sessions == pytest.approx(
            3.0 * base["A->D"].num_sessions)
        assert by_name["B->C"].num_sessions == pytest.approx(
            base["B->C"].num_sessions)

    def test_surge_expiry(self, line_state):
        fault_state = NetworkFaultState()
        fault_state.apply(FaultEvent(
            1, FaultKind.TRAFFIC_SURGE, "*", factor=2.0,
            duration_epochs=2), line_state)
        fault_state.expire(2)  # still active (until epoch 3)
        assert fault_state.surges
        fault_state.expire(3)
        assert not fault_state.surges

    def test_materialize_folds_failures(self, diamond_topology):
        from repro.core.inputs import NetworkState
        from repro.topology.routing import shortest_path_routing
        from repro.traffic.classes import TrafficClass

        routing = shortest_path_routing(diamond_topology)
        classes = [TrafficClass(
            name="A->D", source="A", target="D",
            path=routing.path("A", "D"),
            num_sessions=100.0, session_bytes=1000.0)]
        state = NetworkState.calibrated(diamond_topology, classes)

        fault_state = NetworkFaultState()
        transit = classes[0].path[1]  # the middle hop
        fault_state.apply(FaultEvent(
            0, FaultKind.NODE_DOWN, transit), state)
        new_state, impacts = fault_state.materialize(state)
        assert transit not in new_state.topology.nodes
        (impact,) = impacts
        assert impact.rerouted_classes == ["A->D"]
        assert impact.lost_fraction == pytest.approx(0.0)
        # The surviving class routes around the dead hop.
        (survivor,) = new_state.classes
        assert transit not in survivor.path

    def test_materialize_link_cut(self, diamond_topology):
        from repro.core.inputs import NetworkState
        from repro.topology.routing import shortest_path_routing
        from repro.traffic.classes import TrafficClass

        routing = shortest_path_routing(diamond_topology)
        classes = [TrafficClass(
            name="A->D", source="A", target="D",
            path=routing.path("A", "D"),
            num_sessions=100.0, session_bytes=1000.0)]
        state = NetworkState.calibrated(diamond_topology, classes)

        path = classes[0].path
        fault_state = NetworkFaultState()
        fault_state.apply(FaultEvent(
            0, FaultKind.LINK_CUT, f"{path[0]}|{path[1]}"), state)
        new_state, impacts = fault_state.materialize(state)
        (impact,) = impacts
        assert impact.rerouted_classes == ["A->D"]
        (survivor,) = new_state.classes
        assert survivor.path != path
