"""Tests for the sharded control plane: regional LPs, the capacity
coordinator, planner merge/failover, and the global-planner identity.

Unit-scale checks run on the conftest line topology; the identity and
regional-problem equivalence checks run once on tinet (module-scoped
fixtures keep the LP count down).
"""

from __future__ import annotations

import pytest

from repro.core import MirrorPolicy, NIDSController
from repro.core.controller import (
    GlobalPlanner,
    RegionalReplicationProblem,
    ShardCoordinator,
    ShardedPlanner,
)
from repro.core.replication import ReplicationProblem
from repro.core.validation import validate_replication
from repro.experiments.common import setup_topology
from repro.shim.config import build_replication_configs


@pytest.fixture(scope="module")
def tinet():
    return setup_topology("tinet", dc_capacity_factor=1.0)


class TestGlobalPlannerIdentity:
    """The controller refactor must not change the global code path."""

    def test_bit_identical_to_direct_problem(self, tinet):
        planner = GlobalPlanner(tinet.state,
                                mirror_policy=MirrorPolicy.datacenter(),
                                max_link_load=0.4)
        outcome = planner.plan(tinet.classes)

        direct = ReplicationProblem(
            tinet.state.with_traffic(tinet.classes),
            mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=0.4)
        expected = direct.solve()

        assert outcome.result.load_cost == expected.load_cost
        assert outcome.result.process_fractions == \
            expected.process_fractions
        assert outcome.result.offload_fractions == \
            expected.offload_fractions
        assert outcome.result.node_loads == expected.node_loads
        assert build_replication_configs(outcome.state,
                                         outcome.result) == \
            build_replication_configs(direct.state, expected)

    def test_controller_defaults_to_global_planner(self,
                                                   line_state_dc):
        controller = NIDSController(line_state_dc)
        assert isinstance(controller.planner, GlobalPlanner)

    def test_warm_replan_matches_cold(self, line_state_dc,
                                      line_classes):
        planner = GlobalPlanner(line_state_dc)
        planner.plan(line_classes)
        heavier = [cls.scaled(2.0) for cls in line_classes]
        warm = planner.plan(heavier)
        cold = GlobalPlanner(line_state_dc).plan(heavier)
        assert warm.result.load_cost == pytest.approx(
            cold.result.load_cost)


class TestCoordinator:
    SHARED = {"dc": ("region-0", "region-1")}

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardCoordinator(max_rounds=0)
        with pytest.raises(ValueError):
            ShardCoordinator(tolerance=0.0)
        with pytest.raises(ValueError):
            ShardCoordinator(demand_floor=1.0)

    def test_shared_elements_need_two_regions(self):
        coordinator = ShardCoordinator()
        surfaces = {"region-0": frozenset({"dc", "only-mine"}),
                    "region-1": frozenset({"dc"})}
        shared = coordinator.shared_elements(surfaces)
        assert shared == {"dc": ("region-0", "region-1")}

    def test_initial_shares_proportional_and_normalized(self):
        coordinator = ShardCoordinator()
        shares = coordinator.initial_shares(
            self.SHARED, {"region-0": 3000.0, "region-1": 1000.0})
        assert shares["region-0"]["dc"] == pytest.approx(0.75)
        assert shares["region-1"]["dc"] == pytest.approx(0.25)
        assert sum(s["dc"] for s in shares.values()) == \
            pytest.approx(1.0)

    def test_initial_shares_even_split_without_traffic(self):
        coordinator = ShardCoordinator()
        shares = coordinator.initial_shares(
            self.SHARED, {"region-0": 0.0, "region-1": 0.0})
        assert shares["region-0"]["dc"] == pytest.approx(0.5)

    def test_reallocate_moves_toward_demand(self):
        coordinator = ShardCoordinator()
        current = {"region-0": {"dc": 0.5}, "region-1": {"dc": 0.5}}
        shares = coordinator.reallocate(
            self.SHARED, current,
            {"region-0": {"dc": 0.9}, "region-1": {"dc": 0.1}})
        assert shares["region-0"]["dc"] == pytest.approx(0.9)
        assert shares["region-1"]["dc"] == pytest.approx(0.1)

    def test_reallocate_floors_idle_region(self):
        coordinator = ShardCoordinator(demand_floor=0.02)
        current = {"region-0": {"dc": 0.5}, "region-1": {"dc": 0.5}}
        shares = coordinator.reallocate(
            self.SHARED, current,
            {"region-0": {"dc": 1.0}, "region-1": {}})
        # The idle region keeps a re-entry floor; the sum stays one.
        assert shares["region-1"]["dc"] > 0.0
        assert sum(s["dc"] for s in shares.values()) == \
            pytest.approx(1.0)

    def test_reallocate_keeps_split_when_nobody_demands(self):
        coordinator = ShardCoordinator()
        current = {"region-0": {"dc": 0.7}, "region-1": {"dc": 0.3}}
        shares = coordinator.reallocate(self.SHARED, current,
                                        {"region-0": {},
                                         "region-1": {}})
        assert shares == {"region-0": {"dc": 0.7},
                          "region-1": {"dc": 0.3}}

    def test_converged(self):
        coordinator = ShardCoordinator(tolerance=1e-3)
        old = {"region-0": {"dc": 0.5}}
        assert coordinator.converged(old, {"region-0": {"dc": 0.5005}})
        assert not coordinator.converged(old, {"region-0": {"dc": 0.6}})


class TestRegionalProblem:
    def test_share_validation(self, line_state_dc):
        with pytest.raises(ValueError):
            RegionalReplicationProblem(
                line_state_dc, line_state_dc.bg_bytes,
                capacity_share={"DC": 1.5})
        with pytest.raises(ValueError):
            RegionalReplicationProblem(
                line_state_dc, line_state_dc.bg_bytes,
                link_share={("A", "B"): 0.0})

    def test_full_shares_match_plain_problem(self, line_state_dc):
        """With the whole traffic matrix and no shares the regional
        LP is exactly the plain replication LP."""
        plain = ReplicationProblem(line_state_dc).solve()
        regional = RegionalReplicationProblem(
            line_state_dc, line_state_dc.bg_bytes).solve()
        assert regional.load_cost == pytest.approx(plain.load_cost)
        for cls_name, fractions in plain.process_fractions.items():
            for node, value in fractions.items():
                assert regional.process_fractions[cls_name][node] == \
                    pytest.approx(value, abs=1e-6)

    def test_warm_share_patch_matches_cold(self, line_state_dc):
        """Re-solving with new shares patches the warm LP to the same
        answer a cold build with those shares produces."""
        shares = {"DC": 0.5}
        warm = RegionalReplicationProblem(line_state_dc,
                                          line_state_dc.bg_bytes)
        warm.solve()
        patched = warm.resolve(capacity_share=shares)
        cold = RegionalReplicationProblem(
            line_state_dc, line_state_dc.bg_bytes,
            capacity_share=shares).solve()
        assert patched.load_cost == pytest.approx(cold.load_cost)


class TestShardedAcceptance:
    """Pinned acceptance bar: tinet, 2 regions, seed 0."""

    @pytest.fixture(scope="class")
    def planned(self, tinet):
        oracle = GlobalPlanner(
            tinet.state, mirror_policy=MirrorPolicy.datacenter())
        global_cost = oracle.plan(tinet.classes).result.load_cost
        planner = ShardedPlanner(
            tinet.state, mirror_policy=MirrorPolicy.datacenter(),
            num_regions=2, seed=0, jobs=1)
        outcome = planner.plan(tinet.classes)
        return planner, outcome, global_cost

    def test_gap_within_ten_percent(self, planned):
        planner, outcome, global_cost = planned
        gap = (outcome.result.load_cost - global_cost) / global_cost
        assert gap <= 0.10
        assert outcome.result.load_cost >= global_cost - 1e-9

    def test_bounded_coordination_rounds(self, planned):
        planner, _, _ = planned
        assert 1 <= planner.last_rounds <= 5

    def test_merged_result_is_feasible(self, planned):
        _, outcome, _ = planned
        assert validate_replication(outcome.state,
                                    outcome.result) == []

    def test_regional_allocations_fit_capacity(self, planned, tinet):
        planner, _, _ = planned
        for resource in tinet.state.resources:
            totals = {}
            for per_node in planner.shard_allocations(
                    resource).values():
                for node, amount in per_node.items():
                    totals[node] = totals.get(node, 0.0) + amount
            for node, total in totals.items():
                capacity = tinet.state.capacity(resource, node)
                assert total <= capacity * (1.0 + 1e-6)

    def test_verify_hook_passes(self, planned, tinet, monkeypatch):
        planner, _, _ = planned
        monkeypatch.setenv("REPRO_VERIFY_MODELS", "1")
        outcome = planner.plan(tinet.classes)
        assert validate_replication(outcome.state,
                                    outcome.result) == []


class TestShardedSmall:
    def test_validation(self, line_state_dc):
        with pytest.raises(ValueError):
            ShardedPlanner(line_state_dc, num_regions=0)
        with pytest.raises(ValueError):
            ShardedPlanner(line_state_dc, jobs=0)

    def test_single_region_close_to_global(self, line_state_dc,
                                           line_classes):
        sharded = ShardedPlanner(line_state_dc, num_regions=1,
                                 jobs=1).plan(line_classes)
        global_cost = GlobalPlanner(line_state_dc).plan(
            line_classes).result.load_cost
        assert sharded.result.load_cost == pytest.approx(
            global_cost, rel=1e-4)

    def test_controller_runs_with_sharded_planner(self, line_state_dc,
                                                  line_classes):
        planner = ShardedPlanner(line_state_dc, num_regions=2, jobs=1)
        controller = NIDSController(line_state_dc, planner=planner)
        rollout = controller.refresh(line_classes)
        assert rollout.transition is None
        second = controller.refresh(
            [cls.scaled(3.0) for cls in line_classes])
        assert second.transition is not None


class TestFailover:
    def test_neighbor_adopts_and_replans(self, line_state_dc,
                                         line_classes):
        planner = ShardedPlanner(line_state_dc, num_regions=2, jobs=1)
        planner.plan(line_classes)
        assert planner.partition is not None
        before = len(planner.partition.regions)
        victim = planner.partition.regions[0]
        adopter = planner.fail_region(victim.nodes[0])
        assert adopter in planner.partition.region_names()
        assert victim.name not in planner.partition.region_names()
        assert len(planner.partition.regions) == before - 1
        assert planner.failover_count == 1

        outcome = planner.plan(line_classes)
        assert validate_replication(outcome.state,
                                    outcome.result) == []

    def test_unknown_target_rejected(self, line_state_dc,
                                     line_classes):
        planner = ShardedPlanner(line_state_dc, num_regions=2, jobs=1)
        planner.plan(line_classes)
        with pytest.raises(ValueError):
            planner.fail_region("not-a-node")

    def test_failover_before_plan_rejected(self, line_state_dc):
        planner = ShardedPlanner(line_state_dc, num_regions=2)
        with pytest.raises(RuntimeError):
            planner.fail_region("A")
