"""``repro lint --fix``: the HYG003 unused-import auto-fixer.

The invariants pinned here: a fix pass leaves the file HYG003-clean,
a second pass is a byte-identical no-op, and the fixer shares the
rule's blind spots (pragmas, ``__all__`` re-exports, ``__init__.py``,
``__future__`` imports) so fix and scan can never disagree.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import LintEngine, fix_file, fix_unused_imports
from repro.analysis.rules.hygiene import UnusedImportRule
from repro.cli import main

FIXTURES = Path(__file__).parent / "analysis_fixtures"


def _hyg003(tmp_path: Path, source: str):
    target = tmp_path / "mod.py"
    target.write_text(source, encoding="utf-8")
    engine = LintEngine(rules=[UnusedImportRule()],
                        project_root=tmp_path)
    return engine.run([target])


class TestFixUnusedImports:
    def test_wholly_unused_statement_deleted(self):
        result = fix_unused_imports(
            "import os\nimport json\n\nprint(json.dumps({}))\n")
        assert result.changed
        assert result.removed == ["os"]
        assert result.source == (
            "import json\n\nprint(json.dumps({}))\n")

    def test_partially_used_from_import_rewritten(self):
        result = fix_unused_imports(
            "from os.path import join, split, basename\n\n"
            "print(join('a', basename('b')))\n")
        assert result.removed == ["split"]
        assert result.source.startswith(
            "from os.path import join, basename\n")

    def test_asname_preserved_in_rewrite(self):
        result = fix_unused_imports(
            "import numpy as np, json\n\nprint(np.zeros(1))\n")
        assert result.removed == ["json"]
        assert result.source.startswith("import numpy as np\n")

    def test_multi_line_import_collapsed(self):
        result = fix_unused_imports(
            "from collections import (\n"
            "    OrderedDict,\n"
            "    defaultdict,\n"
            ")\n\n"
            "d = defaultdict(list)\n")
        assert result.removed == ["OrderedDict"]
        assert result.source == (
            "from collections import defaultdict\n\n"
            "d = defaultdict(list)\n")

    def test_pragma_suppressed_import_kept(self):
        source = ("import os  # repro-lint: allow[HYG003]\n"
                  "import json\n\nprint(json.dumps({}))\n")
        result = fix_unused_imports(source)
        assert result.removed == []
        assert result.source == source

    def test_dunder_all_export_kept(self):
        source = ("from os.path import join\n\n"
                  "__all__ = ['join']\n")
        result = fix_unused_imports(source)
        assert result.removed == []

    def test_future_import_kept(self):
        source = "from __future__ import annotations\n"
        assert fix_unused_imports(source).removed == []

    def test_init_py_untouched(self, tmp_path):
        target = tmp_path / "__init__.py"
        target.write_text("import os\n", encoding="utf-8")
        result = fix_file(target)
        assert result.removed == []
        assert target.read_text(encoding="utf-8") == "import os\n"

    def test_fix_then_scan_is_clean(self, tmp_path):
        source = ("import os\nimport sys\n"
                  "from json import dumps, loads\n\n"
                  "print(dumps(sys.argv))\n")
        fixed = fix_unused_imports(source).source
        assert _hyg003(tmp_path, fixed) == []

    def test_second_pass_is_noop(self):
        source = ("import os\nimport json\n"
                  "from os.path import join, split\n\n"
                  "print(json.dumps(join('a', 'b')))\n")
        once = fix_unused_imports(source)
        assert once.changed
        twice = fix_unused_imports(once.source)
        assert not twice.changed
        assert twice.source == once.source


class TestCliFix:
    def test_fix_rewrites_file_and_scan_passes(self, tmp_path, capsys):
        target = tmp_path / "runtime" / "mod.py"
        target.parent.mkdir()
        target.write_text(
            "import os\nimport json\n\nprint(json.dumps({}))\n",
            encoding="utf-8")
        assert main(["lint", str(target), "--rules", "HYG003",
                     "--fix"]) == 0
        out = capsys.readouterr().out
        assert "os" in out
        assert target.read_text(encoding="utf-8") == (
            "import json\n\nprint(json.dumps({}))\n")

    def test_fix_on_clean_file_reports_nothing_changed(self, tmp_path,
                                                       capsys):
        target = tmp_path / "mod.py"
        target.write_text("import json\n\nprint(json.dumps({}))\n",
                          encoding="utf-8")
        assert main(["lint", str(target), "--rules", "HYG003",
                     "--fix"]) == 0
        assert target.read_text(encoding="utf-8") == (
            "import json\n\nprint(json.dumps({}))\n")
