"""Tests for flood detection and stepping-stone correlation."""

import pytest

from repro.nids import (
    FloodDetector,
    FlowRecord,
    ScanAggregator,
    SplitStrategy,
    SteppingStoneDetector,
    merge_detectors,
)


class TestFloodDetector:
    def test_distinct_source_counting(self):
        det = FloodDetector()
        det.observe_flow(1, 99)
        det.observe_flow(2, 99)
        det.observe_flow(1, 99)  # duplicate source
        det.observe_flow(1, 50)
        assert det.source_count(99) == 2
        assert det.source_count(50) == 1
        assert det.source_count(7) == 0

    def test_threshold(self):
        det = FloodDetector(threshold=2)
        for src in range(5):
            det.observe_flow(src, 99)
        det.observe_flow(1, 50)
        assert det.flagged_destinations() == [99]

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            FloodDetector(threshold=-1)

    def test_per_destination_split_aggregates_correctly(self):
        """Each node owns a destination partition; per-destination
        counts sum across nodes/paths — the Section 6 extension."""
        node_a = FloodDetector()   # owns destination 99
        node_b = FloodDetector()   # owns destination 50
        victims = {99: node_a, 50: node_b}
        flows = [(s, 99) for s in range(10)] + [(7, 50), (8, 50)]
        for src, dst in flows:
            victims[dst].observe_flow(src, dst)

        aggregator = ScanAggregator(threshold=5,
                                    strategy=SplitStrategy.SOURCE_LEVEL)
        aggregator.submit(node_a.destination_count_report("N1"))
        aggregator.submit(node_b.destination_count_report("N2"))
        assert aggregator.alerts() == [99]

    def test_cross_path_counts_add(self):
        """The same victim reached over two paths: the aggregate count
        is the sum when sources are disjoint across paths."""
        path1 = FloodDetector()
        path2 = FloodDetector()
        for src in range(4):
            path1.observe_flow(src, 99)
        for src in range(100, 104):
            path2.observe_flow(src, 99)
        aggregator = ScanAggregator(threshold=6)
        aggregator.submit(path1.destination_count_report("N1"))
        aggregator.submit(path2.destination_count_report("N2"))
        assert aggregator.combined_counts()[99] == 8
        assert aggregator.alerts() == [99]

    def test_reset(self):
        det = FloodDetector()
        det.observe_flow(1, 99)
        det.reset()
        assert det.source_count(99) == 0


class TestFlowRecord:
    def test_validation(self):
        with pytest.raises(ValueError):
            FlowRecord(1, 2, start=5.0, end=4.0)

    def test_overlap(self):
        a = FlowRecord(1, 2, 0.0, 10.0)
        b = FlowRecord(3, 4, 5.0, 15.0)
        c = FlowRecord(5, 6, 11.0, 20.0)
        assert a.overlaps(b)
        assert not a.overlaps(c)


class TestSteppingStone:
    def relay_pair(self, stone=50):
        attacker_in = FlowRecord(src_ip=10, dst_ip=stone,
                                 start=0.0, end=100.0)
        relay_out = FlowRecord(src_ip=stone, dst_ip=99,
                               start=1.0, end=98.0)
        return attacker_in, relay_out

    def test_detects_relay(self):
        det = SteppingStoneDetector()
        inbound, outbound = self.relay_pair()
        det.observe_flow(inbound)
        det.observe_flow(outbound)
        assert det.flagged_stones() == [50]

    def test_needs_both_stages(self):
        """Figure 4's point: a location seeing only one stage cannot
        correlate."""
        inbound, outbound = self.relay_pair()
        only_in = SteppingStoneDetector()
        only_in.observe_flow(inbound)
        only_out = SteppingStoneDetector()
        only_out.observe_flow(outbound)
        assert only_in.flagged_stones() == []
        assert only_out.flagged_stones() == []

    def test_replication_restores_detection(self):
        """Merging both locations' observations (what replication to a
        common mirror achieves) recovers the detection."""
        inbound, outbound = self.relay_pair()
        only_in = SteppingStoneDetector()
        only_in.observe_flow(inbound)
        only_out = SteppingStoneDetector()
        only_out.observe_flow(outbound)
        merged = merge_detectors([only_in, only_out])
        assert merged.flagged_stones() == [50]

    def test_reply_not_flagged(self):
        """An outbound flow straight back to the inbound's source is a
        reply, not a relay."""
        det = SteppingStoneDetector()
        det.observe_flow(FlowRecord(10, 50, 0.0, 100.0))
        det.observe_flow(FlowRecord(50, 10, 1.0, 99.0))
        assert det.flagged_stones() == []

    def test_duration_mismatch_not_flagged(self):
        det = SteppingStoneDetector(duration_tolerance=0.1)
        det.observe_flow(FlowRecord(10, 50, 0.0, 100.0))
        det.observe_flow(FlowRecord(50, 99, 1.0, 20.0))  # too short
        assert det.flagged_stones() == []

    def test_non_overlapping_not_flagged(self):
        det = SteppingStoneDetector()
        det.observe_flow(FlowRecord(10, 50, 0.0, 50.0))
        det.observe_flow(FlowRecord(50, 99, 60.0, 110.0))
        assert det.flagged_stones() == []

    def test_short_flows_ignored(self):
        det = SteppingStoneDetector(min_duration=5.0)
        det.observe_flow(FlowRecord(10, 50, 0.0, 1.0))
        det.observe_flow(FlowRecord(50, 99, 0.0, 1.0))
        assert det.flagged_stones() == []

    def test_candidate_details(self):
        det = SteppingStoneDetector()
        inbound, outbound = self.relay_pair()
        det.observe_flow(inbound)
        det.observe_flow(outbound)
        (candidate,) = det.candidates()
        assert candidate.stone_ip == 50
        assert candidate.inbound == inbound
        assert candidate.outbound == outbound

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SteppingStoneDetector(duration_tolerance=2.0)
        with pytest.raises(ValueError):
            SteppingStoneDetector(min_duration=-1.0)
