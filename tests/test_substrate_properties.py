"""Property-based tests for topology, traffic, and scheduling
substrates."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.shim import FiveTuple
from repro.simulation import Session, Supernode, validate_in_session_order
from repro.topology.generators import synthetic_isp_topology
from repro.topology.routing import shortest_path_routing
from repro.topology.topology import canonical_link
from repro.traffic.gravity import gravity_traffic_matrix


class TestGeneratorProperties:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 10_000),
           num_pops=st.integers(10, 45),
           mean_degree=st.floats(2.2, 4.5))
    def test_generated_isp_always_connected(self, seed, num_pops,
                                            mean_degree):
        topo = synthetic_isp_topology("isp", num_pops, seed,
                                      mean_degree)
        assert topo.is_connected()
        assert topo.num_nodes == num_pops
        assert min(topo.degree(n) for n in topo.nodes) >= 2

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_routing_table_covers_all_pairs(self, seed):
        topo = synthetic_isp_topology("isp", 15, seed)
        routing = shortest_path_routing(topo)
        assert len(routing.all_pairs()) == 15 * 14
        for source, target in routing.all_pairs()[:30]:
            path = routing.path(source, target)
            assert path[0] == source and path[-1] == target


class TestGravityProperties:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 10_000),
           total=st.floats(1e3, 1e8))
    def test_total_volume_conserved(self, seed, total):
        topo = synthetic_isp_topology("isp", 12, seed)
        matrix = gravity_traffic_matrix(topo, total_sessions=total)
        assert matrix.total == pytest.approx(total, rel=1e-9)

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_gravity_symmetric_in_volume(self, seed):
        """Gravity volumes are symmetric: T[s,t] == T[t,s]."""
        topo = synthetic_isp_topology("isp", 10, seed)
        matrix = gravity_traffic_matrix(topo, 1e6)
        for source, target in list(matrix.pairs())[:40]:
            assert matrix.volume(source, target) == pytest.approx(
                matrix.volume(target, source), rel=1e-9)


class TestLinkCanonicalization:
    names = st.text(alphabet="ABCDEFab", min_size=1, max_size=4)

    @given(u=names, v=names)
    def test_order_invariant(self, u, v):
        assert canonical_link(u, v) == canonical_link(v, u)

    @given(u=names, v=names)
    def test_idempotent(self, u, v):
        link = canonical_link(u, v)
        assert canonical_link(*link) == link


class TestSupernodeProperties:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000),
           counts=st.lists(st.integers(1, 6), min_size=1, max_size=8))
    def test_order_preserved_for_any_trace(self, seed, counts):
        sessions = []
        for i, packet_count in enumerate(counts):
            session = Session(FiveTuple(6, i, 1, i + 100, 80), "c",
                              ("A",))
            for p in range(packet_count):
                session.add_packet("fwd" if p % 2 == 0 else "rev", 10)
            sessions.append(session)
        schedule = Supernode(seed=seed).schedule(sessions)
        assert len(schedule) == sum(counts)
        assert validate_in_session_order(schedule)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000),
           epoch_seconds=st.floats(1.0, 30.0))
    def test_epochs_partition_sessions(self, seed, epoch_seconds):
        sessions = []
        for i in range(25):
            session = Session(FiveTuple(6, i, 1, i + 100, 80), "c",
                              ("A",))
            session.add_packet("fwd", 10)
            sessions.append(session)
        node = Supernode(duration=60.0, seed=seed)
        batches = node.epochs(sessions, epoch_seconds)
        flattened = [s for batch in batches for s in batch]
        assert len(flattened) == len(sessions)
        assert {id(s) for s in flattened} == {id(s) for s in sessions}
