"""The schedule-perturbation verifier (``repro racecheck``).

Invariance is checked for real against a small canned scenario; the
divergence path is exercised with a deliberately order-sensitive
micro-workload substituted for ``run_scenario``, so the test proves
both halves: a schedule-race-free scenario stays fingerprint-stable
under perturbation, and a handler that communicates through ordering
is caught.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.cli import main
from repro.runtime import racecheck as racecheck_mod
from repro.runtime.events import EventLoop, PerturbedEventLoop
from repro.runtime.racecheck import (
    PERTURB_SEED_STRIDE,
    RacecheckReport,
    ScenarioRacecheck,
    perturbation_seeds,
    racecheck_canned,
    racecheck_scenario,
)
from repro.runtime.scenario import CANNED_SCENARIOS


class TestPerturbationSeeds:
    def test_distinct_and_strided(self):
        seeds = perturbation_seeds(4)
        assert len(set(seeds)) == 4
        assert seeds == [1 + i * PERTURB_SEED_STRIDE for i in range(4)]

    def test_base_offsets_the_sequence(self):
        assert perturbation_seeds(2, base=100) == [
            101, 101 + PERTURB_SEED_STRIDE]

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            perturbation_seeds(0)


def _result(name="s", fingerprints=None, baseline="aaa"):
    result = ScenarioRacecheck(
        name=name, topology="tinet", epochs=2, scenario_seed=7,
        baseline_fingerprint=baseline)
    result.perturbed_fingerprints = dict(fingerprints or {})
    return result


class TestReportShapes:
    def test_invariant_when_all_match(self):
        result = _result(fingerprints={1: "aaa", 2: "aaa"})
        assert result.invariant
        assert result.divergent_seeds == []

    def test_divergent_seeds_sorted(self):
        result = _result(fingerprints={9: "bbb", 1: "aaa", 5: "ccc"})
        assert not result.invariant
        assert result.divergent_seeds == [5, 9]

    def test_report_json_schema(self):
        report = RacecheckReport(
            seeds=[1, 2],
            scenarios=[_result(fingerprints={1: "aaa", 2: "bbb"})])
        payload = json.loads(report.to_json())
        assert payload["schema"] == 1
        assert payload["all_invariant"] is False
        assert payload["perturbation_seeds"] == [1, 2]
        entry = payload["scenarios"][0]
        assert entry["divergent_seeds"] == [2]
        assert entry["perturbed_fingerprints"] == {
            "1": "aaa", "2": "bbb"}
        assert "static_findings" not in payload

    def test_static_findings_included_when_present(self):
        report = RacecheckReport(seeds=[1], scenarios=[],
                                 static_findings=[])
        assert report.to_dict()["static_findings"] == []


class TestInvariance:
    def test_canned_scenario_is_fingerprint_invariant(self):
        scenario = CANNED_SCENARIOS["steady-drift"](
            topology="tinet", epochs=2)
        result = racecheck_scenario(scenario, perturbation_seeds(3))
        assert result.invariant, result.divergent_seeds
        assert result.baseline_fingerprint
        assert len(result.perturbed_fingerprints) == 3

    def test_canned_runner_validates_names(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            racecheck_canned(names=["no-such-scenario"], seeds=1)

    def test_canned_runner_applies_overrides(self):
        report = racecheck_canned(
            names=["steady-drift"], seeds=2, epochs=2,
            topology="tinet")
        assert report.all_invariant
        [entry] = report.scenarios
        assert entry.name == "steady-drift"
        assert entry.topology == "tinet"
        assert entry.epochs == 2
        assert report.seeds == perturbation_seeds(2)


class _OrderSensitiveReport:
    """Fingerprint = the order same-instant events actually fired in."""

    def __init__(self, order):
        self._order = order

    def fingerprint(self) -> str:
        return hashlib.sha256(
            ",".join(self._order).encode()).hexdigest()


def _order_sensitive_run(scenario, loop_factory=None):
    loop = (loop_factory or EventLoop)()
    fired = []
    for label in ("a", "b", "c", "d", "e", "f"):
        loop.schedule_at(1.0, lambda label=label: fired.append(label))
    loop.run_all()
    return _OrderSensitiveReport(fired)


class TestDivergenceDetection:
    def test_order_sensitive_workload_is_caught(self, monkeypatch):
        monkeypatch.setattr(racecheck_mod, "run_scenario",
                            _order_sensitive_run)
        scenario = CANNED_SCENARIOS["steady-drift"](
            topology="tinet", epochs=2)
        result = racecheck_scenario(scenario, perturbation_seeds(6))
        assert not result.invariant
        assert result.divergent_seeds

    def test_perturbed_loop_reproduces_per_seed(self):
        # Same seed, same shuffle: the perturbation itself is
        # deterministic, so divergences are replayable.
        orders = []
        for _ in range(2):
            report = _order_sensitive_run(
                None, loop_factory=lambda: PerturbedEventLoop(3))
            orders.append(report.fingerprint())
        assert orders[0] == orders[1]


class TestCli:
    def test_racecheck_smoke_exits_clean(self, capsys):
        assert main(["racecheck", "steady-drift", "--seeds", "2",
                     "--epochs", "2", "--topology", "tinet",
                     "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "steady-drift" in out
        assert "invariant" in out

    def test_racecheck_json_report(self, tmp_path, capsys):
        out_path = tmp_path / "racecheck.json"
        assert main(["racecheck", "steady-drift", "--seeds", "2",
                     "--epochs", "2", "--topology", "tinet",
                     "--quiet", "--json", str(out_path)]) == 0
        payload = json.loads(out_path.read_text(encoding="utf-8"))
        assert payload["schema"] == 1
        assert payload["all_invariant"] is True
        assert [s["name"] for s in payload["scenarios"]] == [
            "steady-drift"]

    def test_racecheck_unknown_scenario_is_usage_error(self, capsys):
        assert main(["racecheck", "no-such", "--quiet"]) == 2
        err = capsys.readouterr().err
        assert "no-such" in err

    def test_racecheck_static_report_is_clean(self, tmp_path, capsys):
        assert main(["racecheck", "steady-drift", "--seeds", "1",
                     "--epochs", "2", "--topology", "tinet",
                     "--quiet", "--static", "--json", "-"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["static_findings"] == []
