"""Unit tests for consistent reconfiguration (Section 9)."""

import pytest

from repro.core import (
    CommitOutcome,
    MirrorPolicy,
    OverlapTransition,
    Participant,
    ReplicationProblem,
    TransitionPhase,
    TwoPhaseCommit,
    union_config,
)
from repro.shim import Shim, build_replication_configs


@pytest.fixture
def two_configs(line_state_dc):
    """Old and new shim configs from two different LP solves."""
    old = ReplicationProblem(
        line_state_dc, mirror_policy=MirrorPolicy.none()).solve()
    new = ReplicationProblem(
        line_state_dc, mirror_policy=MirrorPolicy.datacenter(),
        max_link_load=0.4).solve()
    return (build_replication_configs(line_state_dc, old),
            build_replication_configs(line_state_dc, new))


class TestUnionConfig:
    def test_preserves_both_rule_sets(self, two_configs):
        old, new = two_configs
        merged = union_config(old["B"], new["B"])
        assert merged.num_rules == (old["B"].num_rules +
                                    new["B"].num_rules)

    def test_node_mismatch_rejected(self, two_configs):
        old, new = two_configs
        with pytest.raises(ValueError):
            union_config(old["A"], new["B"])


class TestOverlapTransition:
    def test_lifecycle(self, two_configs):
        old, new = two_configs
        transition = OverlapTransition(old, new)
        assert transition.phase is TransitionPhase.IDLE
        assert transition.active_configs() == old

        transition.begin()
        assert transition.phase is TransitionPhase.OVERLAPPING
        for node in sorted(new):
            transition.acknowledge(node)
        assert transition.phase is TransitionPhase.COMPLETE
        assert transition.active_configs() == new

    def test_no_coverage_gap_during_overlap(self, two_configs,
                                            line_state_dc):
        """The union configs cover every hash value of every class at
        every instant of the transition — the paper's correctness
        requirement."""
        old, new = two_configs
        transition = OverlapTransition(old, new)
        transition.begin()
        transition.acknowledge("A")  # partial rollout
        active = transition.active_configs()
        shims = {node: Shim(active[node], classifier=None)
                 for node in active}
        for cls in line_state_dc.classes:
            for i in range(100):
                value = i / 100.0
                owners = 0
                for node in cls.path:
                    for rule in shims[node].config.rules_for(cls.name):
                        if rule.hash_range.contains(value):
                            owners += 1
                            break  # first-match per node
                assert owners >= 1, (cls.name, value)

    def test_begin_twice_rejected(self, two_configs):
        transition = OverlapTransition(*two_configs)
        transition.begin()
        with pytest.raises(RuntimeError):
            transition.begin()

    def test_ack_without_begin_rejected(self, two_configs):
        transition = OverlapTransition(*two_configs)
        with pytest.raises(RuntimeError):
            transition.acknowledge("A")

    def test_unknown_node_ack_rejected(self, two_configs):
        transition = OverlapTransition(*two_configs)
        transition.begin()
        with pytest.raises(KeyError):
            transition.acknowledge("ZZ")

    def test_node_set_mismatch_rejected(self, two_configs):
        old, new = two_configs
        partial = {k: v for k, v in new.items() if k != "A"}
        with pytest.raises(ValueError):
            OverlapTransition(old, partial)

    def test_pending_nodes(self, two_configs):
        transition = OverlapTransition(*two_configs)
        transition.begin()
        before = set(transition.pending_nodes)
        transition.acknowledge("B")
        assert set(transition.pending_nodes) == before - {"B"}


class TestTwoPhaseCommit:
    def test_all_yes_commits(self, two_configs):
        _, new = two_configs
        participants = [Participant(node) for node in sorted(new)]
        coordinator = TwoPhaseCommit(participants)
        outcome = coordinator.execute(new)
        assert outcome is CommitOutcome.COMMITTED
        for participant in participants:
            assert participant.committed is new[participant.node]
            assert participant.log == ["prepare", "commit"]

    def test_one_failure_aborts_everyone(self, two_configs):
        _, new = two_configs
        participants = [Participant(node,
                                    fails_prepare=(node == "C"))
                        for node in sorted(new)]
        coordinator = TwoPhaseCommit(participants)
        outcome = coordinator.execute(new)
        assert outcome is CommitOutcome.ABORTED
        for participant in participants:
            assert participant.committed is None
            assert participant.log[-1] == "abort"

    def test_missing_config_rejected(self, two_configs):
        _, new = two_configs
        participants = [Participant(node) for node in sorted(new)]
        coordinator = TwoPhaseCommit(participants)
        partial = {k: v for k, v in new.items() if k != "A"}
        with pytest.raises(ValueError):
            coordinator.execute(partial)

    def test_duplicate_participants_rejected(self):
        with pytest.raises(ValueError):
            TwoPhaseCommit([Participant("A"), Participant("A")])
