"""Acceptance: epoch-to-epoch delta rollouts install strictly fewer
rules than full-table rollouts on the steady-drift scenario.

This is the churn claim the diff compiler exists for — after the
bootstrap epoch (identical by construction: there is no base table to
patch), every delta refresh ships only the rules the LP re-solve
actually moved. The paired summaries are written to
``benchmarks/results/delta_rollout.json`` as the backing artifact.
"""

import dataclasses
import json
import pathlib

import pytest

from repro.runtime.scenario import run_scenario, steady_drift_scenario

RESULTS = pathlib.Path(__file__).parent.parent / "benchmarks" / \
    "results"
EPOCHS = 5


@pytest.fixture(scope="module")
def reports():
    out = {}
    for strategy in ("overlap", "delta"):
        scenario = dataclasses.replace(
            steady_drift_scenario(epochs=EPOCHS), strategy=strategy)
        out[strategy] = run_scenario(scenario)
    return out


class TestDeltaVsFullTableRollouts:
    def test_delta_installs_strictly_fewer_rules(self, reports):
        overlap = reports["overlap"].summary()
        delta = reports["delta"].summary()
        assert delta["rules_installed"] < overlap["rules_installed"]

    def test_every_refresh_after_bootstrap_is_cheaper(self, reports):
        """Not just the total: each post-bootstrap epoch's delta
        refresh installs strictly fewer rules than the corresponding
        full-table refresh."""
        overlap = reports["overlap"].records
        delta = reports["delta"].records
        pairs = [(o.rules_installed, d.rules_installed)
                 for o, d in zip(overlap, delta, strict=True)
                 if o.rules_installed is not None
                 and d.rules_installed is not None]
        assert len(pairs) >= 2  # bootstrap + at least one refresh
        assert pairs[0][0] == pairs[0][1]  # bootstrap: no base table
        for full, incremental in pairs[1:]:
            assert incremental < full

    def test_delta_rollouts_complete_with_full_coverage(self,
                                                        reports):
        """The cheaper rollout is not buying churn with gaps: every
        delta epoch ends fully covered, like overlap does."""
        for report in reports.values():
            for record in report.records:
                assert record.coverage_end == pytest.approx(1.0)

    def test_artifact_written(self, reports):
        payload = {
            "schema": 1,
            "experiment": "delta-rollout",
            "scenario": "steady-drift",
            "topology": "internet2",
            "epochs": EPOCHS,
            "strategies": {
                strategy: {
                    "rules_installed":
                        report.summary()["rules_installed"],
                    "rules_shipped":
                        report.summary()["rules_shipped"],
                    "per_epoch_installed": [
                        record.rules_installed
                        for record in report.records],
                }
                for strategy, report in reports.items()
            },
        }
        assert (payload["strategies"]["delta"]["rules_installed"] <
                payload["strategies"]["overlap"]["rules_installed"])
        RESULTS.mkdir(exist_ok=True)
        (RESULTS / "delta_rollout.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n")
