"""Tests for the network-wide controller (Figure 6)."""

import pytest

from repro.core import (
    MirrorPolicy,
    NIDSController,
    TransitionPhase,
)


@pytest.fixture
def controller(line_state_dc):
    return NIDSController(line_state_dc,
                          mirror_policy=MirrorPolicy.datacenter(),
                          max_link_load=0.4)


class TestLifecycle:
    def test_first_refresh_has_no_transition(self, controller):
        rollout = controller.refresh()
        assert rollout.transition is None
        assert controller.current_configs is rollout.configs
        assert controller.refresh_count == 1

    def test_second_refresh_produces_overlap_transition(self,
                                                        controller,
                                                        line_classes):
        controller.refresh()
        shifted = [line_classes[0].scaled(3.0), line_classes[1]]
        rollout = controller.refresh(shifted)
        assert rollout.transition is not None
        assert rollout.transition.phase is TransitionPhase.OVERLAPPING
        for node in sorted(rollout.configs):
            rollout.transition.acknowledge(node)
        assert rollout.transition.phase is TransitionPhase.COMPLETE

    def test_result_adapts_to_traffic(self, controller, line_classes):
        first = controller.refresh()
        heavier = [cls.scaled(2.0) for cls in line_classes]
        second = controller.refresh(heavier)
        # Load grows at least linearly (doubled background also shrinks
        # the replication headroom, so it can grow super-linearly), but
        # stays within the ingress-only ceiling of 2.0.
        assert second.result.load_cost > \
            1.9 * first.result.load_cost - 1e-9
        assert second.result.load_cost <= 2.0 + 1e-9

    def test_refresh_without_classes_reuses_current(self, controller,
                                                    line_classes):
        controller.refresh([cls.scaled(2.0) for cls in line_classes])
        again = controller.refresh()
        assert again.result.load_cost == pytest.approx(
            controller.current_result.load_cost)


class TestTriggers:
    def test_needs_refresh_initially(self, controller, line_classes):
        assert controller.needs_refresh(line_classes)

    def test_small_drift_no_refresh(self, controller, line_classes):
        controller.refresh(line_classes)
        slightly = [cls.scaled(1.05) for cls in line_classes]
        assert controller.traffic_drift(slightly) < 0.1
        assert not controller.needs_refresh(slightly)

    def test_large_drift_triggers(self, controller, line_classes):
        controller.refresh(line_classes)
        doubled = [cls.scaled(2.0) for cls in line_classes]
        assert controller.needs_refresh(doubled)

    def test_disappearing_class_counts_fully(self, controller,
                                             line_classes):
        controller.refresh(line_classes)
        drift = controller.traffic_drift(line_classes[:1])
        assert drift > 0.3  # B->C (500 of 1500) vanished

    def test_drift_zero_for_identical_traffic(self, controller,
                                              line_classes):
        controller.refresh(line_classes)
        assert controller.traffic_drift(line_classes) == 0.0

    def test_threshold_validation(self, line_state_dc):
        with pytest.raises(ValueError):
            NIDSController(line_state_dc, drift_threshold=-0.1)

    def test_zero_total_baseline_reads_as_no_drift(self, controller,
                                                   line_classes):
        # Regression: a dead feed (every class at zero sessions, as a
        # sketch estimator that saw nothing yet reports) must not
        # raise on the zero denominator or pin the trigger high.
        silent = [cls.scaled(0.0) for cls in line_classes]
        controller.refresh(silent)
        assert controller.traffic_drift(silent) == 0.0
        assert not controller.needs_refresh(silent)
        # Traffic appearing after a silent baseline is full drift —
        # it fires once, then clears after the next refresh.
        assert controller.traffic_drift(line_classes) == 1.0
        assert controller.needs_refresh(line_classes)
        controller.refresh(line_classes)
        assert not controller.needs_refresh(line_classes)


class _ScriptedPlanner:
    """Replays pre-computed outcomes, one per refresh."""

    def __init__(self, outcomes):
        self._outcomes = list(outcomes)

    def plan(self, classes):
        return self._outcomes.pop(0)


class TestNodeUniverseChange:
    def test_mismatched_node_sets_skip_transition(self, line_state_dc,
                                                  line_classes):
        """A refresh across different node universes (e.g. a shard
        adoption mid-epoch) must not build an overlap transition —
        and must not crash summing union rules over one-sided nodes.
        """
        from repro.core.controller import GlobalPlanner
        from repro.core.failures import fail_node
        from repro.obs import MetricsRegistry, use_registry

        first = GlobalPlanner(line_state_dc).plan(line_classes)
        shrunken, impact = fail_node(line_state_dc, "A")
        assert impact.dropped_classes == ["A->D"]
        second = GlobalPlanner(shrunken).plan(shrunken.classes)
        assert set(first.state.nids_nodes) != \
            set(second.state.nids_nodes)

        controller = NIDSController(
            line_state_dc,
            planner=_ScriptedPlanner([first, second]))
        with use_registry(MetricsRegistry()) as metrics:
            assert controller.refresh().transition is None
            rollout = controller.refresh(shrunken.classes)
            gauges = metrics.snapshot()["gauges"]
        assert rollout.transition is None
        assert controller.current_configs is rollout.configs
        # The union-rule gauge counted one-sided nodes once each.
        assert gauges["controller.transition.union_rules"] > 0
