"""Scalar-vs-fast parity for the vectorized replay engine.

The fast path's contract is *bit-identical reports*: every ``run_*``
kind is replayed both ways on the largest evaluation topology (tinet)
and the dataclass reports compared with ``==``. The fallback ladder —
custom engine factories, uncompilable configs, prebuilt batches that
cannot fall back — is exercised on the small line fixtures.
"""

import pytest

from repro.core import (
    AggregationProblem,
    MirrorPolicy,
    ReplicationProblem,
    SplitTrafficProblem,
)
from repro.experiments.common import setup_topology
from repro.nids.signature import SignatureEngine
from repro.obs import MetricsRegistry, use_registry
from repro.shim import (
    HashRange,
    ShimAction,
    ShimRule,
    build_aggregation_configs,
    build_replication_configs,
    build_split_configs,
)
from repro.shim.config import HashMode
from repro.simulation import Emulation, PacketBatch, TraceGenerator
from repro.simulation.tracegen import TraceSpec


@pytest.fixture(scope="module")
def tinet_state():
    return setup_topology("tinet", dc_capacity_factor=10.0).state


@pytest.fixture(scope="module")
def tinet_trace(tinet_state):
    generator = TraceGenerator(
        tinet_state.topology.nodes, tinet_state.classes,
        spec=TraceSpec(total_sessions=300, scanner_count=2,
                       scanner_fanout=20), seed=21)
    sessions = generator.generate(with_payloads=True)
    return generator, sessions


class TestTinetParity:
    """All run_* kinds, scalar vs fast, on the tinet fixture."""

    def _replication_emulation(self, state, generator):
        result = ReplicationProblem(
            state, mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=0.4).solve()
        configs = build_replication_configs(state, result)
        return Emulation(state, configs, generator.classifier)

    def test_signature_parity(self, tinet_state, tinet_trace):
        generator, sessions = tinet_trace
        emulation = self._replication_emulation(tinet_state, generator)
        scalar = emulation.run_signature(sessions)
        fast = emulation.run_signature(sessions, fast=True)
        assert fast == scalar
        assert fast.replicated_bytes > 0

    def test_signature_parity_from_prebuilt_batch(self, tinet_state,
                                                  tinet_trace):
        generator, sessions = tinet_trace
        emulation = self._replication_emulation(tinet_state, generator)
        batch = PacketBatch.from_sessions(
            sessions, generator.classifier,
            tuple(tinet_state.nids_nodes))
        assert emulation.run_signature(batch, fast=True) == \
            emulation.run_signature(sessions)

    def test_stateful_parity(self, tinet_state, tinet_trace):
        generator, sessions = tinet_trace
        result = SplitTrafficProblem(tinet_state,
                                     max_link_load=0.4).solve()
        configs = build_split_configs(tinet_state, result)
        emulation = Emulation(tinet_state, configs,
                              generator.classifier)
        scalar = emulation.run_stateful(sessions)
        assert emulation.run_stateful(sessions, fast=True) == scalar

    def test_scan_parity(self, tinet_state, tinet_trace):
        generator, sessions = tinet_trace
        result = AggregationProblem(tinet_state, beta=0.0).solve()
        configs = build_aggregation_configs(tinet_state, result)
        emulation = Emulation(tinet_state, configs,
                              generator.classifier)
        scalar = emulation.run_scan(sessions, threshold=10)
        fast = emulation.run_scan(sessions, threshold=10, fast=True)
        assert fast == scalar
        assert scalar.semantically_equivalent
        assert fast.semantically_equivalent

    def test_flood_parity(self, tinet_state, tinet_trace):
        generator, sessions = tinet_trace
        result = AggregationProblem(tinet_state, beta=0.0).solve()
        configs = build_aggregation_configs(tinet_state, result)
        emulation = Emulation(tinet_state, configs,
                              generator.classifier)
        scalar = emulation.run_flood(sessions, threshold=10)
        fast = emulation.run_flood(sessions, threshold=10, fast=True)
        assert fast == scalar
        assert scalar.semantically_equivalent
        assert fast.semantically_equivalent

    def test_scan_epochs_parity(self, tinet_state, tinet_trace):
        generator, sessions = tinet_trace
        result = AggregationProblem(tinet_state, beta=0.0).solve()
        configs = build_aggregation_configs(tinet_state, result)
        emulation = Emulation(tinet_state, configs,
                              generator.classifier)
        half = len(sessions) // 2
        epochs = [sessions[:half], sessions[half:]]
        assert emulation.run_scan_epochs(epochs, threshold=8,
                                         fast=True) == \
            emulation.run_scan_epochs(epochs, threshold=8)


@pytest.fixture
def line_pieces(line_state_dc):
    generator = TraceGenerator(
        line_state_dc.topology.nodes, line_state_dc.classes,
        spec=TraceSpec(total_sessions=400), seed=23)
    sessions = generator.generate(with_payloads=True)
    result = ReplicationProblem(
        line_state_dc, mirror_policy=MirrorPolicy.datacenter(),
        max_link_load=0.4).solve()
    configs = build_replication_configs(line_state_dc, result)
    return line_state_dc, generator, sessions, configs


class TestFastFallbacks:
    def test_custom_engine_factory_falls_back(self, line_pieces):
        state, generator, sessions, configs = line_pieces
        emulation = Emulation(state, configs, generator.classifier)
        factory = lambda: SignatureEngine()  # noqa: E731
        scalar = emulation.run_signature(sessions,
                                         engine_factory=factory)
        with use_registry(MetricsRegistry()) as registry:
            fast = emulation.run_signature(sessions,
                                           engine_factory=factory,
                                           fast=True)
            assert registry.counter_value(
                "emulation.fast.fallbacks") == 1
            assert registry.counter_value("emulation.fast.runs") == 0
        assert fast == scalar

    def test_overlapping_rules_fall_back(self, line_pieces):
        state, generator, sessions, configs = line_pieces
        # Two overlapping PROCESS ranges: scalar first-match-wins has
        # well-defined semantics but the kernel cannot express them.
        cls = state.classes[0].name
        node = state.nids_nodes[0]
        configs[node].rules[cls] = [
            ShimRule(cls, HashRange(("process", node), 0.0, 0.6),
                     ShimAction.PROCESS),
            ShimRule(cls, HashRange(("process", node), 0.4, 0.9),
                     ShimAction.PROCESS),
        ]
        emulation = Emulation(state, configs, generator.classifier)
        with use_registry(MetricsRegistry()) as registry:
            fast = emulation.run_signature(sessions, fast=True)
            assert registry.counter_value(
                "emulation.fast.fallbacks") == 1
        assert fast == emulation.run_signature(sessions)
        assert "overlap" in emulation._last_fallback_reason

    def test_mixed_hash_modes_fall_back(self, line_pieces):
        state, generator, sessions, configs = line_pieces
        cls = state.classes[0].name
        node = state.nids_nodes[0]
        configs[node].rules[cls] = [
            ShimRule(cls, HashRange(("process", node), 0.0, 0.3),
                     ShimAction.PROCESS),
            ShimRule(cls, HashRange(("process", node), 0.5, 0.8),
                     ShimAction.PROCESS, hash_mode=HashMode.SOURCE),
        ]
        emulation = Emulation(state, configs, generator.classifier)
        with use_registry(MetricsRegistry()) as registry:
            fast = emulation.run_signature(sessions, fast=True)
            assert registry.counter_value(
                "emulation.fast.fallbacks") == 1
        assert fast == emulation.run_signature(sessions)

    def test_prebuilt_batch_cannot_fall_back(self, line_pieces):
        state, generator, sessions, configs = line_pieces
        emulation = Emulation(state, configs, generator.classifier)
        batch = PacketBatch.from_sessions(
            sessions, generator.classifier, tuple(state.nids_nodes))
        with pytest.raises(TypeError):
            emulation.run_signature(
                batch, engine_factory=SignatureEngine, fast=True)

    def test_wrong_node_order_batch_rejected(self, line_pieces):
        state, generator, sessions, configs = line_pieces
        emulation = Emulation(state, configs, generator.classifier)
        wrong_order = tuple(reversed(state.nids_nodes))
        batch = PacketBatch.from_sessions(
            sessions, generator.classifier, wrong_order)
        with pytest.raises(ValueError):
            emulation.run_signature(batch, fast=True)

    def test_fast_run_metric(self, line_pieces):
        state, generator, sessions, configs = line_pieces
        emulation = Emulation(state, configs, generator.classifier)
        with use_registry(MetricsRegistry()) as registry:
            emulation.run_signature(sessions, fast=True)
            assert registry.counter_value("emulation.fast.runs") == 1
            assert registry.counter_value(
                "emulation.fast.fallbacks") == 0
