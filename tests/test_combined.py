"""Unit tests for the combined replication+aggregation formulation."""

import pytest

from repro.core import AggregationProblem, CombinedProblem


class TestCombinedProblem:
    def test_requires_datacenter(self, line_state):
        with pytest.raises(ValueError):
            CombinedProblem(line_state)

    def test_coverage_sums_to_one(self, line_state_dc):
        result = CombinedProblem(line_state_dc, beta=1e-9).solve()
        for cls in line_state_dc.classes:
            total = sum(result.process_fractions[cls.name].values())
            assert total == pytest.approx(1.0, abs=1e-6)

    def test_never_worse_than_pure_aggregation(self, line_state_dc):
        """The combined formulation strictly generalizes Figure 9 (set
        all o to zero), so its objective can only improve."""
        beta = AggregationProblem(line_state_dc).suggested_beta()
        pure = AggregationProblem(line_state_dc, beta=beta).solve()
        combined = CombinedProblem(line_state_dc, beta=beta,
                                   max_link_load=0.4).solve()
        assert combined.objective <= pure.objective + 1e-9

    def test_dc_used_when_comm_cost_dominates(self, line_state_dc):
        """With a very large beta and an aggregation point that sits
        next to the DC, shipping the sub-task to the DC wins."""
        anchor = "B"  # the DC anchor on the line fixture
        result = CombinedProblem(
            line_state_dc, beta=1e6, max_link_load=1.0,
            aggregation_point=lambda cls: anchor).solve()
        # Classes not passing through B benefit from DC counting
        # (report distance DC->B is 1 hop vs their own distance).
        dc_usage = sum(
            fractions.get("DC", 0.0)
            for fractions in result.process_fractions.values())
        # At minimum the formulation keeps comm cost no worse than
        # counting at the closest on-path node.
        pure = AggregationProblem(
            line_state_dc, beta=1e6,
            aggregation_point=lambda cls: anchor).solve()
        assert result.comm_cost <= pure.comm_cost + 1e-6
        assert dc_usage >= 0.0

    def test_link_budget_limits_dc_counting(self, line_state_dc):
        """Zero link budget forbids shipping traffic to the DC, so the
        combined result collapses to pure aggregation."""
        beta = AggregationProblem(line_state_dc).suggested_beta()
        pure = AggregationProblem(line_state_dc, beta=beta).solve()
        choked = CombinedProblem(line_state_dc, beta=beta,
                                 max_link_load=0.0).solve()
        assert choked.objective == pytest.approx(pure.objective,
                                                 rel=1e-6)

    def test_load_balancing_can_beat_pure_aggregation(self,
                                                      line_state_dc):
        """With beta ~ 0 the DC's spare capacity lets the combined
        formulation reach a lower LoadCost than on-path-only
        aggregation."""
        pure = AggregationProblem(line_state_dc, beta=0.0).solve()
        combined = CombinedProblem(line_state_dc, beta=0.0,
                                   max_link_load=1.0).solve()
        assert combined.load_cost <= pure.load_cost + 1e-9

    def test_validation(self, line_state_dc):
        with pytest.raises(ValueError):
            CombinedProblem(line_state_dc, beta=-1.0)
        with pytest.raises(ValueError):
            CombinedProblem(line_state_dc, max_link_load=1.5)
