"""Tests for the scenario runner: the closed-loop daemon over the
event loop, bit-reproducibility, coverage invariants, and reports.

These run on internet2 (11 PoPs) with short horizons so the whole
module stays in tier-1 time.
"""

import json

import pytest

from repro.runtime import (
    CANNED_SCENARIOS,
    ChannelSpec,
    ControllerDaemon,
    EventLoop,
    RolloutDriver,
    Scenario,
    build_agents,
    run_scenario,
)
from repro.runtime.rollout import ConfigChannel
from repro.runtime.scenario import (
    cascading_failure_scenario,
    flash_crowd_scenario,
    steady_drift_scenario,
)


@pytest.fixture(scope="module")
def drift_report():
    scenario = Scenario(
        name="unit-drift", topology="internet2", seed=3, epochs=4,
        drift_sigma=0.3,
        channel=ChannelSpec(base_delay=2.0, jitter=3.0, loss=0.1,
                            retransmit_timeout=8.0))
    return scenario, run_scenario(scenario)


class TestScenarioSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            Scenario(name="bad", epochs=0)
        with pytest.raises(ValueError):
            Scenario(name="bad", mirror="teleport")
        with pytest.raises(ValueError):
            Scenario(name="bad", drift_sigma=-1.0)

    def test_refresh_period_in_seconds(self):
        scenario = Scenario(name="s", epoch_seconds=100.0,
                            refresh_period_epochs=3)
        assert scenario.refresh_period == 300.0
        scenario = Scenario(name="s", refresh_period_epochs=None)
        assert scenario.refresh_period is None

    def test_canned_registry(self):
        assert set(CANNED_SCENARIOS) == {
            "steady-drift", "flash-crowd", "cascading-failure",
            "regional-failover", "sketch-estimator"}
        for builder in CANNED_SCENARIOS.values():
            scenario = builder(epochs=3)
            assert scenario.epochs == 3


class TestScenarioRun:
    def test_bootstrap_then_full_coverage(self, drift_report):
        _, report = drift_report
        first = report.records[0]
        assert first.refresh_reason == "bootstrap"
        # Before any config lands nothing is covered; by epoch end the
        # direct rollout finished.
        assert first.coverage_min == pytest.approx(0.0)
        assert first.coverage_end == pytest.approx(1.0)

    def test_bit_reproducible(self, drift_report):
        scenario, report = drift_report
        again = run_scenario(scenario)
        assert report.fingerprint() == again.fingerprint()
        for a, b in zip(report.records, again.records):
            assert a.deterministic_dict() == b.deterministic_dict()

    def test_coverage_never_drops_after_bootstrap(self, drift_report):
        """Overlap rollouts over a lossy channel keep coverage at
        100% in every post-bootstrap, fault-free epoch."""
        _, report = drift_report
        for record in report.records[1:]:
            assert record.coverage_min == pytest.approx(1.0), \
                record.epoch
            assert record.miss_rate == pytest.approx(0.0)

    def test_timeline_and_ground_truth_populated(self, drift_report):
        _, report = drift_report
        for record in report.records:
            assert record.emulated_max_work > 0
            assert record.solve_ok
        refreshed = [r for r in report.records if r.refresh_reason]
        assert refreshed
        for record in refreshed:
            assert record.rollout_latency is not None
            assert record.rollout_latency > 0
            assert record.solve_wall_seconds is not None

    def test_report_json_roundtrip(self, drift_report):
        _, report = drift_report
        payload = json.loads(report.to_json())
        assert payload["schema"] == 1
        assert payload["fingerprint"] == report.fingerprint()
        assert len(payload["epochs"]) == len(report.records)
        assert payload["scenario"]["name"] == "unit-drift"
        summary = payload["summary"]
        assert summary["epochs"] == len(report.records)

    def test_fingerprint_excludes_wall_clock(self, drift_report):
        """Wall-clock solve latency varies run to run; the fingerprint
        must not depend on it."""
        _, report = drift_report
        fingerprint = report.fingerprint()
        for record in report.records:
            record.solve_wall_seconds = 123.456
        assert report.fingerprint() == fingerprint

    def test_timeline_rows_match_export_schema(self, drift_report):
        from repro.obs.export import (
            read_timeline_jsonl,
            timeline_records,
            validate_timeline_record,
        )

        _, report = drift_report
        records = timeline_records(report.timeline_rows(),
                                   source="test", timestamp=0.0)
        for record in records:
            validate_timeline_record(record)
        lines = [json.dumps(r) for r in records]
        assert len(read_timeline_jsonl(lines)) == len(records)


class TestFlashCrowd:
    def test_surge_triggers_resolve_and_recovers(self):
        scenario = flash_crowd_scenario(epochs=6)
        report = run_scenario(scenario)
        surged = [r for r in report.records if r.faults]
        assert len(surged) == 1
        surge_epoch = surged[0].epoch
        before = report.records[surge_epoch - 1].lp_load_cost
        during = report.records[surge_epoch].lp_load_cost
        # The drift trigger catches the surge and the re-solve absorbs
        # it at a higher (but feasible) load cost.
        assert surged[0].refresh_reason is not None
        assert during > before
        assert all(r.solve_ok for r in report.records)
        # Coverage holds right through the surge.
        for record in report.records[1:]:
            assert record.coverage_min == pytest.approx(1.0)


class TestCascadingFailure:
    def test_resolve_restores_coverage_within_each_epoch(self):
        scenario = cascading_failure_scenario(epochs=8)
        report = run_scenario(scenario)
        structural = [r for r in report.records
                      if r.refresh_reason == "structural"]
        assert len(structural) >= 2  # two deaths (+ recovery epoch)
        for record in report.records:
            assert record.solve_ok, record.epoch
        # Every fault epoch ends fully covered again: the re-solve
        # restored feasibility within one epoch of each fault.
        for record in structural:
            assert record.coverage_end == pytest.approx(1.0)
            assert record.miss_rate == pytest.approx(0.0)
        # The transient dip during the direct rollout is visible.
        assert any(r.coverage_min < 1.0 for r in structural)

    def test_victims_avoid_dc_anchor(self):
        """The canned victims never strand the datacenter (the DC's
        anchor PoP is excluded even though no class dies with it)."""
        from repro.experiments.common import setup_topology

        scenario = cascading_failure_scenario(epochs=3)
        victims = {e.target for e in scenario.faults.events
                   if e.target}
        setup = setup_topology("internet2", dc_capacity_factor=10.0)
        dc = setup.state.dc_node
        (anchor,) = setup.state.topology.neighbors(dc)
        assert anchor not in victims


class TestRegionalFailover:
    def test_failover_keeps_coverage(self):
        from repro.runtime.scenario import regional_failover_scenario

        scenario = regional_failover_scenario(epochs=6)
        report = run_scenario(scenario)
        failover = [r for r in report.records
                    if r.refresh_reason == "failover"]
        assert len(failover) == 1
        assert failover[0].faults == ["controller-down"] or \
            any("controller-down" in f for f in failover[0].faults)
        assert all(r.solve_ok for r in report.records)
        # The shard adoption re-solves over the same node universe,
        # so the rollout stays coverage-safe end to end.
        for record in report.records[1:]:
            assert record.coverage_min == pytest.approx(1.0), \
                record.epoch
            assert record.miss_rate == pytest.approx(0.0)
        assert report.records[-1].coverage_end == pytest.approx(1.0)

    def test_failover_scenario_is_reproducible(self):
        from repro.runtime.scenario import regional_failover_scenario

        scenario = regional_failover_scenario(epochs=5)
        assert run_scenario(scenario).fingerprint() == \
            run_scenario(scenario).fingerprint()


class TestDaemon:
    def test_periodic_and_drift_triggers(self, line_state_dc):
        loop = EventLoop()
        channel = ConfigChannel(ChannelSpec(base_delay=1.0), seed=1)
        daemon = ControllerDaemon(
            line_state_dc, RolloutDriver(channel, "overlap"),
            drift_threshold=0.5, refresh_period=100.0)
        agents = build_agents(line_state_dc.node_capacity)
        classes = line_state_dc.classes

        record = daemon.step(loop, agents, classes)
        assert record.reason == "bootstrap"
        loop.run_until(50.0)
        assert daemon.step(loop, agents, classes) is None  # quiet
        loop.run_until(150.0)
        record = daemon.step(loop, agents, classes)
        assert record.reason == "periodic"

        drifted = [cls.scaled(4.0) for cls in classes]
        record = daemon.step(loop, agents, drifted)
        assert record.reason == "drift"

    def test_structural_rebuild(self, line_state_dc):
        from repro.core.failures import fail_node

        loop = EventLoop()
        channel = ConfigChannel(ChannelSpec(base_delay=1.0), seed=1)
        daemon = ControllerDaemon(
            line_state_dc, RolloutDriver(channel, "overlap"))
        agents = build_agents(line_state_dc.node_capacity)
        daemon.step(loop, agents, line_state_dc.classes)
        loop.run_until(50.0)

        # Failing the edge PoP "A" drops the A->D class but keeps the
        # chain (and the DC) connected.
        new_state, impact = fail_node(line_state_dc, "A")
        assert impact.dropped_classes == ["A->D"]
        daemon.replace_state(new_state)
        record = daemon.step(loop, agents, new_state.classes,
                             reason="structural")
        assert record.reason == "structural"
        # Structural rollouts go direct (no overlap across node sets).
        assert record.session.strategy == "direct"
        loop.run_until(100.0)
        assert record.session.latency is not None

    def test_structural_reason_is_latched(self, line_state_dc):
        """replace_state routes through the reason machinery: the
        next un-forced step reports "structural" by itself."""
        from repro.core.failures import fail_node

        loop = EventLoop()
        channel = ConfigChannel(ChannelSpec(base_delay=1.0), seed=1)
        daemon = ControllerDaemon(
            line_state_dc, RolloutDriver(channel, "overlap"))
        agents = build_agents(line_state_dc.node_capacity)
        daemon.step(loop, agents, line_state_dc.classes)
        loop.run_until(50.0)

        old_controller = daemon.controller
        new_state, _ = fail_node(line_state_dc, "A")
        daemon.replace_state(new_state)
        assert daemon.refresh_reason(loop.now,
                                     new_state.classes) == \
            "structural"
        # The warm LP is abandoned with the old controller object.
        assert daemon.controller is not old_controller
        assert daemon.controller.current_configs is None

        record = daemon.step(loop, agents, new_state.classes)
        assert record.reason == "structural"
        # No old configs on the fresh controller -> direct push.
        assert record.rollout.transition is None
        assert record.session.strategy == "direct"
        # The latch is consumed: the daemon goes quiet again.
        assert daemon.step(loop, agents, new_state.classes) is None

    def test_trigger_precedence(self, line_state_dc):
        """bootstrap > structural > periodic > drift."""
        from repro.core.failures import fail_node

        loop = EventLoop()
        channel = ConfigChannel(ChannelSpec(base_delay=1.0), seed=1)
        daemon = ControllerDaemon(
            line_state_dc, RolloutDriver(channel, "overlap"),
            drift_threshold=0.2, refresh_period=10.0)
        agents = build_agents(line_state_dc.node_capacity)
        classes = line_state_dc.classes

        # Structural pressure before the first cycle: bootstrap wins.
        new_state, _ = fail_node(line_state_dc, "A")
        daemon.replace_state(new_state)
        assert daemon.refresh_reason(loop.now,
                                     new_state.classes) == "bootstrap"
        daemon.step(loop, agents, new_state.classes)

        # Expired period AND drifted traffic AND structural pressure:
        # structural wins, then the timer, then drift.
        loop.run_until(20.0)
        daemon.replace_state(new_state)
        drifted = [cls.scaled(4.0) for cls in new_state.classes]
        assert daemon.refresh_reason(loop.now, drifted) == \
            "structural"
        daemon.step(loop, agents, new_state.classes)
        loop.run_until(40.0)
        assert daemon.refresh_reason(loop.now, drifted) == "periodic"
        daemon.step(loop, agents, new_state.classes)
        assert daemon.refresh_reason(loop.now, drifted) == "drift"

    def test_structural_restart_keeps_counters_straight(
            self, line_state_dc):
        """A structural restart is not a bootstrap and not a drift:
        the controller counters must say so."""
        from repro.core.failures import fail_node
        from repro.obs import MetricsRegistry, use_registry

        with use_registry(MetricsRegistry()) as metrics:
            loop = EventLoop()
            channel = ConfigChannel(ChannelSpec(base_delay=1.0),
                                    seed=1)
            daemon = ControllerDaemon(
                line_state_dc, RolloutDriver(channel, "overlap"))
            agents = build_agents(line_state_dc.node_capacity)
            daemon.step(loop, agents, line_state_dc.classes)
            loop.run_until(50.0)
            new_state, _ = fail_node(line_state_dc, "A")
            daemon.replace_state(new_state)
            daemon.step(loop, agents, new_state.classes)
            counters = metrics.snapshot()["counters"]
        assert counters.get("controller.bootstrap_refreshes") == 1
        assert counters.get("runtime.refresh.bootstrap") == 1
        assert counters.get("runtime.refresh.structural") == 1
        assert counters.get("runtime.structural_rebuilds") == 1
        assert "controller.drift_triggers" not in counters

    def test_regional_failover_reason(self, line_state_dc):
        from repro.core.controller import ShardedPlanner
        from repro.obs import MetricsRegistry, use_registry

        with use_registry(MetricsRegistry()) as metrics:
            loop = EventLoop()
            channel = ConfigChannel(ChannelSpec(base_delay=1.0),
                                    seed=1)
            daemon = ControllerDaemon(
                line_state_dc, RolloutDriver(channel, "overlap"),
                planner_factory=lambda state: ShardedPlanner(
                    state, num_regions=2, jobs=1))
            agents = build_agents(line_state_dc.node_capacity)
            daemon.step(loop, agents, line_state_dc.classes)
            loop.run_until(50.0)

            adopter = daemon.fail_region("A")
            assert adopter.startswith("region-")
            record = daemon.step(loop, agents,
                                 line_state_dc.classes)
            counters = metrics.snapshot()["counters"]
        assert record.reason == "failover"
        # The node universe is unchanged, so the rollout stays
        # coverage-safe.
        assert record.rollout.transition is not None
        assert counters.get("runtime.controller_failovers") == 1
        assert counters.get("runtime.refresh.failover") == 1

    def test_fail_region_needs_sharded_planner(self, line_state_dc):
        loop = EventLoop()
        channel = ConfigChannel(ChannelSpec(base_delay=1.0), seed=1)
        daemon = ControllerDaemon(
            line_state_dc, RolloutDriver(channel, "overlap"))
        agents = build_agents(line_state_dc.node_capacity)
        daemon.step(loop, agents, line_state_dc.classes)
        with pytest.raises(ValueError):
            daemon.fail_region("A")

    def test_bootstrap_counter_fires(self, line_state_dc):
        from repro.obs import MetricsRegistry, use_registry

        with use_registry(MetricsRegistry()) as metrics:
            loop = EventLoop()
            channel = ConfigChannel(ChannelSpec(), seed=1)
            daemon = ControllerDaemon(
                line_state_dc, RolloutDriver(channel, "direct"))
            agents = build_agents(line_state_dc.node_capacity)
            daemon.step(loop, agents, line_state_dc.classes)
            counters = metrics.snapshot()["counters"]
        assert counters.get("controller.bootstrap_refreshes") == 1
        assert counters.get("runtime.refresh.bootstrap") == 1
        assert "controller.drift_triggers" not in counters


class TestRuntimeMetrics:
    def test_scenario_publishes_runtime_metrics(self):
        from repro.obs import MetricsRegistry, use_registry

        scenario = steady_drift_scenario(epochs=3, seed=5)
        with use_registry(MetricsRegistry()) as metrics:
            run_scenario(scenario)
            snap = metrics.snapshot()
        counters = snap["counters"]
        assert counters["runtime.epochs"] == 3
        assert counters["runtime.rollouts"] >= 1
        assert "runtime.rollout.seconds" in snap["histograms"]
        assert "runtime.solve.seconds" in snap["histograms"]
        assert "runtime.coverage_gap" in snap["histograms"]

    def test_fault_injection_counted(self):
        from repro.obs import MetricsRegistry, use_registry

        scenario = flash_crowd_scenario(epochs=4)
        with use_registry(MetricsRegistry()) as metrics:
            run_scenario(scenario)
            counters = metrics.snapshot()["counters"]
        assert counters["runtime.faults.injected"] == 1
