"""Diff-equivalence and delta-rollout tests.

The contract pinned here: for any two compiled epochs,
``apply_delta(old, diff_config(old, new))`` is bit-identical to the
freshly compiled new config (after canonical ordering), across all
three paper problems and randomized epoch pairs — and the ``delta``
rollout strategy reaches exactly that state through a lossy channel
while shipping strictly fewer rules than a full-table overlap push.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    MirrorPolicy,
    OverlapTransition,
    ReplicationProblem,
)
from repro.core.aggregation import AggregationProblem
from repro.core.split import SplitTrafficProblem
from repro.runtime.agents import (
    ConfigMessage,
    MessageKind,
    build_agents,
)
from repro.runtime.events import EventLoop
from repro.runtime.rollout import (
    ChannelSpec,
    ConfigChannel,
    RolloutDriver,
    RolloutOutcome,
)
from repro.shim.config import (
    ShimConfig,
    ShimRule,
    build_aggregation_configs,
    build_replication_configs,
    build_split_configs,
)
from repro.shim.diff import (
    ConfigDelta,
    apply_delta,
    canonical_config,
    diff_config,
    diff_configs,
)
from repro.shim.ranges import compile_hash_ranges


def _assert_delta_equivalence(old, new):
    """apply_delta(old, diff(old, new)) == canonical(new), per node."""
    deltas = diff_configs(old, new)
    for node in new:
        base = old.get(node, ShimConfig(node=node, rules={}))
        assert apply_delta(base, deltas[node]) == \
            canonical_config(new[node])


class TestDiffConfig:
    def test_identical_configs_yield_empty_delta(self, line_state_dc):
        result = ReplicationProblem(
            line_state_dc,
            mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=0.4).solve()
        configs = build_replication_configs(line_state_dc, result)
        for node, cfg in configs.items():
            delta = diff_config(cfg, cfg)
            assert delta.is_empty
            assert delta.num_rules == 0

    def test_node_mismatch_rejected(self):
        a = ShimConfig(node="A", rules={})
        b = ShimConfig(node="B", rules={})
        with pytest.raises(ValueError, match="different nodes"):
            diff_config(a, b)
        with pytest.raises(ValueError, match="applied to"):
            apply_delta(a, ConfigDelta(node="B"))

    def test_replay_is_idempotent(self):
        from repro.shim.config import ShimAction

        rng_old, rng_new = compile_hash_ranges(
            [("keep", 0.5), ("swap", 0.5)])
        old = ShimConfig(node="A", rules={"c": [
            ShimRule("c", rng_old, ShimAction.PROCESS)]})
        new = ShimConfig(node="A", rules={"c": [
            ShimRule("c", rng_old, ShimAction.PROCESS),
            ShimRule("c", rng_new, ShimAction.PROCESS)]})
        delta = diff_config(old, new)
        once = apply_delta(old, delta)
        twice = apply_delta(once, delta)
        assert once == twice == canonical_config(new)

    def test_node_only_in_old_gets_pure_retire(self, line_state_dc):
        result = ReplicationProblem(
            line_state_dc,
            mirror_policy=MirrorPolicy.none()).solve()
        configs = build_replication_configs(line_state_dc, result)
        populated = {n: c for n, c in configs.items() if c.num_rules}
        gone = sorted(populated)[0]
        new = {n: c for n, c in populated.items() if n != gone}
        deltas = diff_configs(populated, new)
        assert not deltas[gone].installs
        assert len(deltas[gone].retires) == populated[gone].num_rules
        emptied = apply_delta(populated[gone], deltas[gone])
        assert emptied == ShimConfig(node=gone, rules={})


class TestDiffEquivalenceAcrossProblems:
    """apply(delta) == fresh compile, for all three paper problems."""

    def test_replication_epoch_pair(self, line_state_dc):
        old = build_replication_configs(
            line_state_dc, ReplicationProblem(
                line_state_dc,
                mirror_policy=MirrorPolicy.none()).solve())
        new = build_replication_configs(
            line_state_dc, ReplicationProblem(
                line_state_dc,
                mirror_policy=MirrorPolicy.datacenter(),
                max_link_load=0.4).solve())
        _assert_delta_equivalence(old, new)

    def test_split_epoch_pair(self, line_state_dc):
        old = build_split_configs(
            line_state_dc,
            SplitTrafficProblem(line_state_dc,
                                max_link_load=0.2).solve())
        drifted = line_state_dc.with_traffic(
            [cls.scaled(1.5) for cls in line_state_dc.classes])
        new = build_split_configs(
            drifted,
            SplitTrafficProblem(drifted, max_link_load=0.4).solve())
        _assert_delta_equivalence(old, new)

    def test_aggregation_epoch_pair(self, line_state):
        old = build_aggregation_configs(
            line_state, AggregationProblem(line_state).solve())
        drifted = line_state.with_traffic(
            [cls.scaled(2.0) for cls in line_state.classes])
        new = build_aggregation_configs(
            drifted, AggregationProblem(drifted, beta=0.1).solve())
        _assert_delta_equivalence(old, new)

    def test_budgeted_epoch_pair(self, line_state_dc):
        """Budgeted tables diff/apply just like exact ones."""
        result = ReplicationProblem(
            line_state_dc,
            mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=0.4).solve()
        old = build_replication_configs(line_state_dc, result,
                                        budget=1)
        new = build_replication_configs(line_state_dc, result,
                                        budget=3)
        _assert_delta_equivalence(old, new)


def _configs_from_weights(node, weights):
    """A single-node, single-class config from raw weights."""
    total = sum(weights)
    fractions = [w / total for w in weights]
    fractions[-1] = 1.0 - sum(fractions[:-1])
    from repro.shim.config import ShimAction

    ranges = compile_hash_ranges(
        [(("process", f"N{i}"), fraction)
         for i, fraction in enumerate(fractions)])
    rules = [ShimRule("cls", rng, ShimAction.PROCESS)
             for rng in ranges]
    return ShimConfig(node=node, rules={"cls": rules} if rules else {})


weight_vectors = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    min_size=1, max_size=6,
).filter(lambda ws: sum(ws) > 0.01)


class TestRandomizedEpochPairs:
    @settings(max_examples=80, deadline=None)
    @given(old_weights=weight_vectors, new_weights=weight_vectors)
    def test_apply_delta_matches_fresh_compile(self, old_weights,
                                               new_weights):
        old = _configs_from_weights("A", old_weights)
        new = _configs_from_weights("A", new_weights)
        delta = diff_config(old, new)
        assert apply_delta(old, delta) == canonical_config(new)

    @settings(max_examples=80, deadline=None)
    @given(weights=weight_vectors)
    def test_same_epoch_ships_nothing(self, weights):
        old = _configs_from_weights("A", weights)
        new = _configs_from_weights("A", list(weights))
        assert diff_config(old, new).is_empty


def _drive(strategy, configs, agents, transition=None, spec=None,
           horizon=2000.0):
    loop = EventLoop()
    channel = ConfigChannel(spec or ChannelSpec(base_delay=1.0),
                            seed=5)
    driver = RolloutDriver(channel, strategy)
    session = driver.start(loop, agents, configs, transition)
    loop.run_until(horizon)
    return session


class TestDeltaRollout:
    @pytest.fixture
    def epoch_pair(self, line_state_dc):
        old = build_replication_configs(
            line_state_dc, ReplicationProblem(
                line_state_dc,
                mirror_policy=MirrorPolicy.none()).solve())
        new = build_replication_configs(
            line_state_dc, ReplicationProblem(
                line_state_dc,
                mirror_policy=MirrorPolicy.datacenter(),
                max_link_load=0.4).solve())
        return old, new

    def _seeded_agents(self, state, configs):
        agents = build_agents(state.node_capacity)
        for node, cfg in configs.items():
            agents[node].deliver(ConfigMessage(
                MessageKind.INSTALL, 1, node, cfg), now=0.0)
        return agents

    def test_delta_reaches_fresh_compile_state(self, line_state_dc,
                                               epoch_pair):
        old, new = epoch_pair
        agents = self._seeded_agents(line_state_dc, old)
        session = _drive("delta", new, agents,
                         transition=OverlapTransition(old, new))
        assert session.outcome is RolloutOutcome.COMPLETED
        assert session.retired_at is not None
        for node in new:
            assert canonical_config(agents[node].effective_config()) \
                == canonical_config(new[node])

    def test_delta_survives_lossy_channel(self, line_state_dc,
                                          epoch_pair):
        old, new = epoch_pair
        agents = self._seeded_agents(line_state_dc, old)
        session = _drive(
            "delta", new, agents,
            transition=OverlapTransition(old, new),
            spec=ChannelSpec(base_delay=1.0, jitter=5.0, loss=0.3,
                             retransmit_timeout=4.0))
        assert session.outcome is RolloutOutcome.COMPLETED
        for node in new:
            assert canonical_config(agents[node].effective_config()) \
                == canonical_config(new[node])

    def test_delta_installs_fewer_rules_than_overlap(
            self, line_state_dc):
        """An epoch that re-balances one class leaves the other
        class's rules bit-identical, so the delta ships strictly
        fewer rules than re-installing every table whole."""
        import dataclasses

        result = ReplicationProblem(
            line_state_dc,
            mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=0.4).solve()
        old = build_replication_configs(line_state_dc, result)
        moved = dict(result.process_fractions)
        shifted = dict(moved["B->C"])
        total = sum(shifted.values())
        for i, node in enumerate(sorted(shifted)):
            shifted[node] = (0.7 if i == 0 else 0.3 / max(
                1, len(shifted) - 1)) * total
        moved["B->C"] = shifted
        new = build_replication_configs(
            line_state_dc,
            dataclasses.replace(result, process_fractions=moved))
        delta_agents = self._seeded_agents(line_state_dc, old)
        delta_session = _drive("delta", new, delta_agents,
                               transition=OverlapTransition(old, new))
        overlap_agents = self._seeded_agents(line_state_dc, old)
        overlap_session = _drive(
            "overlap", new, overlap_agents,
            transition=OverlapTransition(old, new))
        assert delta_session.outcome is RolloutOutcome.COMPLETED
        assert overlap_session.outcome is RolloutOutcome.COMPLETED
        assert delta_session.rules_installed < \
            overlap_session.rules_installed
        assert delta_session.delta_rules is not None
        assert delta_session.full_rules == \
            overlap_session.rules_installed

    def test_empty_deltas_complete_without_traffic(self,
                                                   line_state_dc,
                                                   epoch_pair):
        old, _ = epoch_pair
        agents = self._seeded_agents(line_state_dc, old)
        session = _drive("delta", old, agents,
                         transition=OverlapTransition(old, old))
        assert session.outcome is RolloutOutcome.COMPLETED
        assert session.rules_installed == 0
        assert session.rules_shipped == 0

    def test_bare_agent_falls_back_to_full_install(self,
                                                   line_state_dc,
                                                   epoch_pair):
        """A node with no base table can't patch — the driver falls
        back to one full overlap install for it, and the rollout
        still converges on the fresh-compile state everywhere."""
        old, new = epoch_pair
        agents = self._seeded_agents(line_state_dc, old)
        bare = sorted(n for n in new if not diff_config(
            old[n], new[n]).is_empty)[0]
        agents[bare] = build_agents(
            line_state_dc.node_capacity)[bare]  # no base config
        session = _drive("delta", new, agents,
                         transition=OverlapTransition(old, new))
        assert session.outcome is RolloutOutcome.COMPLETED
        assert bare in session.fallback_nodes
        for node in new:
            assert canonical_config(agents[node].effective_config()) \
                == canonical_config(new[node])

    def test_bootstrap_without_transition_goes_direct(
            self, line_state_dc, epoch_pair):
        old, _ = epoch_pair
        agents = build_agents(line_state_dc.node_capacity)
        session = _drive("delta", old, agents, transition=None)
        assert session.strategy == "direct"
        assert session.outcome is RolloutOutcome.COMPLETED
