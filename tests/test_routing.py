"""Unit tests for the routing table."""

import pytest

from repro.topology import builtin_topology, shortest_path_routing


@pytest.fixture
def line_routing(line_topology):
    return shortest_path_routing(line_topology)


class TestRoutingTable:
    def test_path_endpoints(self, line_routing):
        path = line_routing.path("A", "D")
        assert path[0] == "A"
        assert path[-1] == "D"

    def test_self_path(self, line_routing):
        assert line_routing.path("B", "B") == ("B",)

    def test_symmetry(self, line_routing):
        fwd = line_routing.path("A", "D")
        rev = line_routing.path("D", "A")
        assert rev == tuple(reversed(fwd))

    def test_symmetry_under_ties(self, diamond_topology):
        routing = shortest_path_routing(diamond_topology)
        fwd = routing.path("A", "D")
        rev = routing.path("D", "A")
        assert rev == tuple(reversed(fwd))

    def test_path_links(self, line_routing):
        assert line_routing.path_links("A", "C") == \
            [("A", "B"), ("B", "C")]

    def test_hop_count(self, line_routing):
        assert line_routing.hop_count("A", "D") == 3
        assert line_routing.hop_count("C", "C") == 0

    def test_is_on_path(self, line_routing):
        assert line_routing.is_on_path("B", "A", "D")
        assert not line_routing.is_on_path("D", "A", "C")

    def test_all_pairs_count(self, line_routing):
        # 4 nodes -> 12 ordered pairs.
        assert len(line_routing.all_pairs()) == 12

    def test_paths_are_shortest(self):
        topo = builtin_topology("internet2")
        routing = shortest_path_routing(topo)
        for source, target in routing.all_pairs():
            assert (len(routing.path(source, target)) - 1 ==
                    topo.hop_distance(source, target))

    def test_paths_are_simple(self):
        topo = builtin_topology("geant")
        routing = shortest_path_routing(topo)
        for source, target in routing.all_pairs():
            path = routing.path(source, target)
            assert len(set(path)) == len(path)
