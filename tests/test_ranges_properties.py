"""Property-based coverage tests for hash-range compilation.

Seeded-random trials over the Section 7.1 layout: whenever a class's
LP fractions sum to 1, the compiled per-class ranges must be pairwise
non-overlapping and cover [0, 1) exactly — including layouts mixing
on-path ``p_{c,j}`` entries with off-path mirror ``o_{c,j,j'}``
entries, zero fractions, and many tiny slivers.
"""

import random

import pytest

from repro.shim.ranges import compile_hash_ranges, lookup

NODES = [f"N{i}" for i in range(8)]
MIRRORS = ["DC", "M1", "M2"]


def _random_unit_fractions(rng, count, zero_probability=0.2):
    """``count`` non-negative weights summing exactly to 1."""
    weights = [0.0 if rng.random() < zero_probability
               else rng.random() for _ in range(count)]
    if sum(weights) == 0.0:
        weights[rng.randrange(count)] = 1.0
    total = sum(weights)
    fractions = [w / total for w in weights]
    # Kill float drift so the sum is exactly 1 (the LP's equality
    # constraint guarantees the same within solver tolerance).
    fractions[-1] = 1.0 - sum(fractions[:-1])
    return fractions


def _random_entries(rng):
    """A replication-style layout: process entries, then off-path
    mirror (replicate) entries, mimicking build_replication_configs."""
    num_process = rng.randint(1, 6)
    num_offload = rng.randint(0, 6)
    fractions = _random_unit_fractions(rng, num_process + num_offload)
    entries = []
    for i in range(num_process):
        entries.append((("process", NODES[i]), fractions[i]))
    for i in range(num_offload):
        key = ("replicate", NODES[i % len(NODES)],
               MIRRORS[i % len(MIRRORS)])
        entries.append((key, fractions[num_process + i]))
    return entries


def _assert_partition(ranges):
    """Ranges are contiguous, non-overlapping, and cover [0, 1)."""
    assert ranges, "full coverage requires at least one range"
    ordered = sorted(ranges, key=lambda r: r.start)
    assert ordered[0].start == 0.0
    assert ordered[-1].end == 1.0
    for prev, cur in zip(ordered, ordered[1:]):
        assert prev.end == pytest.approx(cur.start, abs=1e-12), \
            "gap or overlap between consecutive ranges"
        assert prev.end <= cur.start + 1e-12, "ranges overlap"
    for rng_ in ordered:
        assert rng_.width > 0.0


@pytest.mark.parametrize("seed", range(40))
def test_random_unit_layouts_partition_the_hash_space(seed):
    rng = random.Random(1000 + seed)
    for _ in range(10):  # many trials per seed
        entries = _random_entries(rng)
        ranges = compile_hash_ranges(entries)
        _assert_partition(ranges)
        # Every probed hash value is owned by exactly one range.
        for _ in range(50):
            value = rng.random()
            owners = [r for r in ranges if r.contains(value)]
            assert len(owners) == 1
            assert lookup(ranges, value) == owners[0].key


@pytest.mark.parametrize("seed", range(10))
def test_widths_match_fractions(seed):
    rng = random.Random(2000 + seed)
    entries = _random_entries(rng)
    ranges = compile_hash_ranges(entries)
    by_key = {r.key: r for r in ranges}
    for key, fraction in entries:
        if fraction <= 1e-9:
            assert key not in by_key  # zero entries produce no range
        else:
            assert by_key[key].width == pytest.approx(fraction,
                                                      abs=1e-6)


def test_off_path_mirror_only_layout():
    """A class served purely by off-path mirrors still partitions."""
    entries = [(("replicate", "N0", "DC"), 0.5),
               (("replicate", "N1", "DC"), 0.3),
               (("replicate", "N2", "M1"), 0.2)]
    ranges = compile_hash_ranges(entries)
    _assert_partition(ranges)
    assert [r.key for r in ranges] == [k for k, _ in entries]


@pytest.mark.parametrize("seed", range(10))
def test_partial_coverage_leaves_tail_unowned(seed):
    """When fractions sum below 1 without full coverage required, the
    tail of [0,1) stays unassigned and nothing overlaps."""
    rng = random.Random(3000 + seed)
    entries = _random_entries(rng)
    scale = rng.uniform(0.2, 0.9)
    scaled = [(key, fraction * scale) for key, fraction in entries]
    ranges = compile_hash_ranges(scaled, require_full_coverage=False)
    covered = sum(r.width for r in ranges)
    assert covered == pytest.approx(scale, abs=1e-6)
    assert lookup(ranges, 0.999999) is None
