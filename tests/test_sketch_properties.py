"""Property tests for the count-min sketch (hypothesis).

The invariants the estimator mode leans on:

- merge is associative and commutative (worker order and merge tree
  shape never change the aggregate);
- estimates are one-sided (``estimate >= truth`` for every key);
- the classic epsilon-delta bound holds even on adversarial key sets
  (every overestimate is within ``epsilon * total`` with probability
  ``>= 1 - delta`` per query, checked in aggregate).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch import CountMinSketch


streams = st.lists(
    st.integers(min_value=0, max_value=2**32 - 1),
    min_size=0, max_size=200)
shapes = st.tuples(st.integers(min_value=4, max_value=64),
                   st.integers(min_value=1, max_value=5),
                   st.integers(min_value=0, max_value=1000))


def _sketch_of(stream, width, depth, seed):
    sketch = CountMinSketch(width, depth, seed=seed)
    if stream:
        sketch.update(np.array(stream, dtype=np.uint32))
    return sketch


@settings(max_examples=40, deadline=None)
@given(streams, streams, shapes)
def test_merge_commutes(left, right, shape):
    width, depth, seed = shape
    ab = _sketch_of(left, width, depth, seed).merge(
        _sketch_of(right, width, depth, seed))
    ba = _sketch_of(right, width, depth, seed).merge(
        _sketch_of(left, width, depth, seed))
    assert np.array_equal(ab.table, ba.table)
    assert ab.total == ba.total


@settings(max_examples=40, deadline=None)
@given(streams, streams, streams, shapes)
def test_merge_is_associative(a, b, c, shape):
    width, depth, seed = shape

    def sk(stream):
        return _sketch_of(stream, width, depth, seed)

    left_first = sk(a).merge(sk(b)).merge(sk(c))
    right_first = sk(a).merge(sk(b).merge(sk(c)))
    assert np.array_equal(left_first.table, right_first.table)
    assert left_first.total == right_first.total


@settings(max_examples=40, deadline=None)
@given(streams, streams, shapes)
def test_merge_equals_concatenated_stream(left, right, shape):
    width, depth, seed = shape
    merged = _sketch_of(left, width, depth, seed).merge(
        _sketch_of(right, width, depth, seed))
    whole = _sketch_of(left + right, width, depth, seed)
    assert np.array_equal(merged.table, whole.table)


@settings(max_examples=60, deadline=None)
@given(streams, shapes)
def test_estimates_never_underestimate(stream, shape):
    width, depth, seed = shape
    sketch = _sketch_of(stream, width, depth, seed)
    if not stream:
        return
    uniq, truth = np.unique(np.array(stream, dtype=np.uint32),
                            return_counts=True)
    assert np.all(sketch.estimate(uniq) >= truth)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=1000),
       st.integers(min_value=0, max_value=10_000))
def test_epsilon_delta_bound_on_adversarial_keys(seed, key_base):
    # Adversarial universe: 4096 consecutive keys (maximally regular
    # structure) hammered into a narrow sketch. The classic bound —
    # overestimate <= epsilon * total with probability >= 1 - delta
    # per key — must still hold in aggregate, because lookup3's rows
    # behave like independent hashes.
    width, depth = 32, 4
    sketch = CountMinSketch(width, depth, seed=seed)
    keys = (np.arange(4096, dtype=np.uint64) + key_base).astype(
        np.uint32)
    sketch.update(keys)
    estimates = sketch.estimate(keys)
    overshoot = estimates - 1  # every key was inserted exactly once
    bound = sketch.epsilon * sketch.total
    failures = int(np.count_nonzero(overshoot > bound))
    # Expected failure mass is delta * n; allow 3x slack so the test
    # is a guardrail, not a coin flip.
    allowed = max(8.0, 3.0 * sketch.delta * len(keys))
    assert failures <= allowed
