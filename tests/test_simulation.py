"""Unit tests for the packet model and trace generator."""

import pytest

from repro.shim import FiveTuple
from repro.simulation import (
    Session,
    TraceGenerator,
    pop_prefix_ip,
)
from repro.simulation.packets import pop_index_of_ip
from repro.simulation.tracegen import PrefixClassifier, TraceSpec
from repro.traffic.classes import TrafficClass


class TestAddressing:
    def test_prefix_roundtrip(self):
        ip = pop_prefix_ip(5, host=42)
        assert pop_index_of_ip(ip) == 5

    def test_distinct_pops_distinct_prefixes(self):
        assert pop_prefix_ip(1, 1) != pop_prefix_ip(2, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            pop_prefix_ip(300)
        with pytest.raises(ValueError):
            pop_prefix_ip(1, host=2 ** 16)


class TestSession:
    def test_default_reverse_path(self):
        session = Session(FiveTuple(6, 1, 2, 3, 4), "c",
                          fwd_path=("A", "B", "C"))
        assert session.rev_path == ("C", "B", "A")

    def test_observers_by_direction(self):
        session = Session(FiveTuple(6, 1, 2, 3, 4), "c",
                          fwd_path=("A", "B"), rev_path=("C",))
        assert session.observers("fwd") == ("A", "B")
        assert session.observers("rev") == ("C",)

    def test_add_packet_validation(self):
        session = Session(FiveTuple(6, 1, 2, 3, 4), "c", ("A",))
        with pytest.raises(ValueError):
            session.add_packet("up", 100)

    def test_wire_tuple_reverses(self):
        tup = FiveTuple(6, 1, 2, 3, 4)
        session = Session(tup, "c", ("A",))
        fwd = session.add_packet("fwd", 100)
        rev = session.add_packet("rev", 100)
        assert fwd.wire_tuple() == tup
        assert rev.wire_tuple() == tup.reversed()

    def test_total_bytes(self):
        session = Session(FiveTuple(6, 1, 2, 3, 4), "c", ("A",))
        session.add_packet("fwd", 100)
        session.add_packet("rev", 60)
        assert session.total_bytes == 160


@pytest.fixture
def small_classes(line_topology):
    from repro.topology import shortest_path_routing

    routing = shortest_path_routing(line_topology)
    return [
        TrafficClass("A->D", "A", "D", routing.path("A", "D"), 600.0),
        TrafficClass("B->C", "B", "C", routing.path("B", "C"), 200.0),
    ]


class TestTraceGenerator:
    def test_session_budget_respected(self, line_topology,
                                      small_classes):
        gen = TraceGenerator(line_topology.nodes, small_classes,
                             spec=TraceSpec(total_sessions=400),
                             seed=1)
        sessions = gen.generate(with_payloads=False)
        assert len(sessions) == 400

    def test_volume_proportions(self, line_topology, small_classes):
        gen = TraceGenerator(line_topology.nodes, small_classes,
                             spec=TraceSpec(total_sessions=400),
                             seed=1)
        sessions = gen.generate(with_payloads=False)
        a_d = sum(1 for s in sessions if s.class_name == "A->D")
        assert a_d == 300  # 600/(600+200) of 400

    def test_deterministic(self, line_topology, small_classes):
        def fingerprints(seed):
            gen = TraceGenerator(line_topology.nodes, small_classes,
                                 spec=TraceSpec(total_sessions=50),
                                 seed=seed)
            return [s.five_tuple for s in gen.generate(False)]

        assert fingerprints(3) == fingerprints(3)
        assert fingerprints(3) != fingerprints(4)

    def test_sessions_follow_class_paths(self, line_topology,
                                         small_classes):
        gen = TraceGenerator(line_topology.nodes, small_classes,
                             spec=TraceSpec(total_sessions=100),
                             seed=1)
        by_name = {c.name: c for c in small_classes}
        for session in gen.generate(False):
            assert session.fwd_path == by_name[session.class_name].path

    def test_classifier_maps_sessions_back(self, line_topology,
                                           small_classes):
        gen = TraceGenerator(line_topology.nodes, small_classes,
                             spec=TraceSpec(total_sessions=100),
                             seed=2)
        for session in gen.generate(False):
            assert gen.classifier(session.five_tuple) == \
                session.class_name

    def test_payload_generation(self, line_topology, small_classes):
        spec = TraceSpec(total_sessions=50, payload_bytes=80,
                         signature_session_fraction=1.0)
        gen = TraceGenerator(line_topology.nodes, small_classes,
                             spec=spec, seed=3)
        sessions = gen.generate(with_payloads=True)
        assert all(len(p.payload) == 80
                   for s in sessions for p in s.packets)

    def test_signatures_embedded_when_requested(self, line_topology,
                                                small_classes):
        from repro.nids import SignatureEngine

        spec = TraceSpec(total_sessions=60, payload_bytes=100,
                         signature_session_fraction=1.0)
        gen = TraceGenerator(line_topology.nodes, small_classes,
                             spec=spec, seed=4)
        engine = SignatureEngine()
        for session in gen.generate(True):
            for packet in session.packets:
                engine.inspect(session.five_tuple, packet.payload)
        assert engine.stats.alerts >= 50  # ~1 per session

    def test_scanner_injection(self, line_topology, small_classes):
        spec = TraceSpec(total_sessions=50, scanner_count=2,
                         scanner_fanout=30)
        gen = TraceGenerator(line_topology.nodes, small_classes,
                             spec=spec, seed=5)
        sessions = gen.generate(False)
        assert len(sessions) == 50 + 2 * 30
        # Scanners contact many distinct destinations.
        by_src = {}
        for s in sessions:
            by_src.setdefault(s.src_ip, set()).add(s.dst_ip)
        assert max(len(d) for d in by_src.values()) >= 30

    def test_heavy_tailed_payload_sizes(self, line_topology,
                                        small_classes):
        spec = TraceSpec(total_sessions=400, payload_bytes=200,
                         payload_sigma=0.8)
        gen = TraceGenerator(line_topology.nodes, small_classes,
                             spec=spec, seed=9)
        sizes = [s.packets[0].size_bytes - 40
                 for s in gen.generate(with_payloads=False)]
        assert len(set(sizes)) > 50          # genuinely variable
        assert max(sizes) > 3 * min(sizes)   # heavy tail
        mean = sum(sizes) / len(sizes)
        assert 100 < mean < 400              # centered near the mean

    def test_fixed_payload_when_sigma_zero(self, line_topology,
                                           small_classes):
        spec = TraceSpec(total_sessions=50, payload_bytes=200,
                         payload_sigma=0.0)
        gen = TraceGenerator(line_topology.nodes, small_classes,
                             spec=spec, seed=10)
        sizes = {p.size_bytes for s in gen.generate(False)
                 for p in s.packets}
        assert sizes == {240}

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            TraceSpec(payload_bytes=0)
        with pytest.raises(ValueError):
            TraceSpec(payload_sigma=-0.5)
        with pytest.raises(ValueError):
            TraceSpec(total_sessions=-1)

    def test_unclassified_tuple_returns_none(self, line_topology,
                                             small_classes):
        classifier = PrefixClassifier(line_topology.nodes,
                                      small_classes)
        outside = FiveTuple(6, pop_prefix_ip(200, 1), 1,
                            pop_prefix_ip(201, 1), 2)
        assert classifier(outside) is None

    def test_duplicate_prefix_pair_rejected(self, line_topology,
                                            small_classes):
        dupe = small_classes + [TrafficClass(
            "A->D2", "A", "D", ("A", "B", "C", "D"), 1.0)]
        with pytest.raises(ValueError):
            PrefixClassifier(line_topology.nodes, dupe)
