"""Edge-case tests for shim config dispatch and asymmetry corners."""

import numpy as np
import pytest

from repro.shim import FiveTuple, Shim, ShimAction, ShimConfig, ShimRule
from repro.shim.ranges import HashRange
from repro.topology import (
    AsymmetricRoutingModel,
    builtin_topology,
    shortest_path_routing,
)


class TestShimConfigDecide:
    def make_config(self):
        rules = {
            "c": [ShimRule("c", HashRange("p", 0.0, 0.4),
                           ShimAction.PROCESS),
                  ShimRule("c", HashRange("o", 0.4, 1.0),
                           ShimAction.REPLICATE, target="DC",
                           direction="fwd")],
        }
        return ShimConfig(node="N1", rules=rules)

    def test_decide_hits_first_matching_rule(self):
        config = self.make_config()
        rule = config.decide("c", 0.2, "fwd")
        assert rule.action is ShimAction.PROCESS

    def test_decide_respects_direction(self):
        config = self.make_config()
        assert config.decide("c", 0.6, "fwd").target == "DC"
        assert config.decide("c", 0.6, "rev") is None

    def test_decide_unknown_class(self):
        config = self.make_config()
        assert config.decide("zzz", 0.2, "fwd") is None

    def test_num_rules(self):
        assert self.make_config().num_rules == 2

    def test_shim_decision_flags(self):
        config = self.make_config()
        shim = Shim(config, classifier=lambda t: "c")
        tup = FiveTuple(6, 1, 2, 3, 4)
        decision = shim.handle(tup, "fwd")
        assert decision.is_process or decision.is_replicate
        assert not decision.is_ignore


class TestAsymmetryEdges:
    def test_exclude_identical_with_single_candidate(self):
        """A topology whose candidate pool is one path cannot supply a
        non-identical reverse path."""
        from repro.topology.topology import Topology

        topo = Topology("pair", ["A", "B"], [("A", "B")])
        routing = shortest_path_routing(topo)
        model = AsymmetricRoutingModel(topo, routing)
        with pytest.raises(ValueError):
            model.reverse_path_for(("A", "B"), 0.5,
                                   exclude_identical=True)

    def test_theta_zero_allows_degenerate_gaussian(self):
        topo = builtin_topology("internet2")
        routing = shortest_path_routing(topo)
        model = AsymmetricRoutingModel(topo, routing)
        routes = model.generate(0.0, np.random.default_rng(0))
        assert len(routes) == 55
        # Target 0 picks the most-disjoint candidates available.
        assert model.mean_overlap(routes) < 0.3

    def test_overlap_cache_reused(self):
        topo = builtin_topology("internet2")
        routing = shortest_path_routing(topo)
        model = AsymmetricRoutingModel(topo, routing)
        fwd = routing.path("ATLA", "NYCM")
        first = model._overlaps_for(fwd)
        second = model._overlaps_for(fwd)
        assert first is second  # cached array object
