"""Tests for the emulation/LP agreement metrics, plus a guard that the
README's quickstart snippet actually runs."""

import pathlib
import re

import pytest

from repro.core import MirrorPolicy, ReplicationProblem
from repro.shim import build_replication_configs
from repro.simulation import (
    Emulation,
    TraceGenerator,
    peak_to_mean,
    predicted_work_shares,
    share_divergence,
    work_shares,
)
from repro.simulation.tracegen import TraceSpec


class TestMetrics:
    def test_shares_sum_to_one(self, line_state_dc):
        result = ReplicationProblem(
            line_state_dc, mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=0.4).solve()
        shares = predicted_work_shares(line_state_dc, result)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_emulation_matches_prediction(self, line_state_dc):
        result = ReplicationProblem(
            line_state_dc, mirror_policy=MirrorPolicy.datacenter(),
            max_link_load=0.4).solve()
        configs = build_replication_configs(line_state_dc, result)
        generator = TraceGenerator(
            line_state_dc.topology.nodes, line_state_dc.classes,
            spec=TraceSpec(total_sessions=1500), seed=41)
        emulation = Emulation(line_state_dc, configs,
                              generator.classifier)
        report = emulation.run_signature(
            generator.generate(with_payloads=False))
        divergence = share_divergence(
            work_shares(report),
            predicted_work_shares(line_state_dc, result))
        assert divergence < 0.08

    def test_divergence_bounds(self):
        same = {"a": 0.5, "b": 0.5}
        assert share_divergence(same, same) == 0.0
        disjoint = share_divergence({"a": 1.0}, {"b": 1.0})
        assert disjoint == pytest.approx(1.0)

    def test_peak_to_mean(self):
        assert peak_to_mean({"a": 2.0, "b": 1.0, "c": 0.0}) == \
            pytest.approx(2.0)
        import math

        assert math.isnan(peak_to_mean({}))


class TestReadmeSnippet:
    def test_quickstart_block_executes(self):
        """Extract the README's first python code block and run it."""
        readme = pathlib.Path(__file__).parent.parent / "README.md"
        text = readme.read_text()
        match = re.search(r"```python\n(.*?)```", text, re.DOTALL)
        assert match, "README has no python quickstart block"
        code = match.group(1)
        namespace = {}
        exec(compile(code, "README.md", "exec"), namespace)  # noqa: S102
        assert "result" in namespace
        assert namespace["result"].load_cost < 1.0
