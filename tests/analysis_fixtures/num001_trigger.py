"""NUM001 trigger: exact equality on solver outputs."""


def compare(solution, other):
    if solution.objective_value == 1.25:
        return True
    return solution.value(other) != 0.0
