"""HYG002 trigger: mutable default arguments."""


def collect(item, bucket=[]):
    bucket.append(item)
    return bucket


def tally(key, counts={}):
    counts[key] = counts.get(key, 0) + 1
    return counts
