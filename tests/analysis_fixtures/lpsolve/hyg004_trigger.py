"""HYG004 trigger: incomplete annotations inside the strict scope."""


def no_return_type(x: int):
    return x + 1


def untyped_argument(x) -> int:
    return x + 1
