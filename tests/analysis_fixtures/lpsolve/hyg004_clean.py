"""HYG004 non-trigger: fully annotated defs (self/cls exempt)."""


class Accumulator:
    def __init__(self, start: int = 0) -> None:
        self.total = start

    def add(self, value: int) -> int:
        self.total += value
        return self.total
