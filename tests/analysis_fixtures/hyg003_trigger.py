"""HYG003 trigger: module-level imports never referenced."""

import json
from pathlib import Path


def no_imports_used():
    return 42
