"""HYG001 trigger: build_model() rebuilt every loop iteration."""


def sweep(problem, loads):
    results = []
    for load in loads:
        problem.max_link_load = load
        problem.build_model()
        results.append(problem.solve())
    return results
