"""HYG003 non-trigger: imports used in code, annotations and __all__."""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from typing import Iterable

__all__ = ["dump"]


def dump(path: "Path", rows: "Iterable[int]") -> str:
    return json.dumps({"path": str(path), "rows": list(rows)})
