"""NUM002 non-trigger: every constructor pins its dtype."""

import numpy as np


def pack(values):
    words = np.array(values, dtype=np.uint32)
    pad = np.zeros(len(values), dtype=np.uint32)
    return words, pad
