"""NUM002 trigger: hash-path arrays without an explicit dtype."""

import numpy as np


def pack(values):
    words = np.array(values)
    pad = np.zeros(len(values))
    return words, pad
