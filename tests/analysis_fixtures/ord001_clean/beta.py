"""ORD001 clean half B: staggered after alpha's instant."""


def start(loop, epoch):
    loop.schedule_at(epoch * 300.0 + 1.5, rollout)


def rollout():
    pass
