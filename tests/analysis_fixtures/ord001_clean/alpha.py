"""ORD001 clean half A: distinct instant from beta's."""


def start(loop, epoch):
    loop.schedule_at(epoch * 300.0, refresh)


def refresh():
    pass
