"""NUM003 non-trigger: every byte reinterpretation pins its dtype."""

import numpy as np


def open_payload(path, raw):
    blob = np.memmap(path, dtype=np.uint8, mode="r")
    pattern = np.frombuffer(raw, dtype=np.uint8)
    return blob, pattern
