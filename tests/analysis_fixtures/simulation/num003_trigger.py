"""NUM003 trigger: trace-path byte reinterpretation without dtype."""

import numpy as np


def open_payload(path, raw):
    blob = np.memmap(path, mode="r")
    pattern = np.frombuffer(raw)
    return blob, pattern
