"""DET002 trigger: process-global / unseeded randomness."""

import random

import numpy as np


def draw():
    jitter = random.random()
    rng = np.random.default_rng()
    legacy = np.random.randint(0, 10)
    return jitter, rng, legacy
