"""DET001 non-trigger: perf_counter is the sanctioned timing clock."""

import time


def time_a_block():
    start = time.perf_counter()
    return time.perf_counter() - start
