"""DET003 trigger: seeds that never descend from the scenario seed."""

import numpy as np


def build(width):
    rng = np.random.default_rng(1234)  # hard-coded seed
    sketch = CountSketch(width, seed=99)  # ambient constant seed
    return rng, sketch


class CountSketch:
    def __init__(self, width, seed):
        self.width = width
        self.seed = seed
