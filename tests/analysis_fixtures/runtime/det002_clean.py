"""DET002 non-trigger: seeded generators are the sanctioned source."""

import random

import numpy as np


def draw(seed: int):
    rng = np.random.default_rng(seed)
    local = random.Random(seed)
    return rng.random(), local.random()
