"""Pragma fixtures: both suppression placements must work."""

import time


def same_line_pragma():
    return time.time()  # repro-lint: allow[DET001]


def comment_line_pragma():
    # Intentional: this fixture documents the preceding-comment form.
    # repro-lint: allow[DET001]
    return time.time()


def unsuppressed():
    return time.time()
