"""RACE002 clean: captured values are bound at schedule time."""


def fan_out(loop, nodes):
    for node in nodes:
        # default argument freezes the current iteration's value
        loop.schedule_in(1.0, lambda node=node: push(node))


def staged(loop):
    version = 1

    def apply(version=version):
        return install(version)

    loop.schedule_in(2.0, apply)


def push(node):
    return node


def install(version):
    return version
