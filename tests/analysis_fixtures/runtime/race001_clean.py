"""RACE001 clean: one owning handler; the other writer is never
scheduled, so the module state has a single event-time writer."""

TICKS = {"count": 0, "last": None}


class Daemon:
    def __init__(self, loop):
        self.loop = loop

    def start(self):
        self.loop.schedule_at(0.0, self.on_tick)

    def on_tick(self):
        TICKS["count"] += 1

    def reset(self):
        # called synchronously from setup code, not via the loop
        TICKS["last"] = None
