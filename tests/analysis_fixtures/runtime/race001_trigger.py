"""RACE001 trigger: module state written from two event handlers."""

TICKS = {"count": 0, "last": None}


class Daemon:
    def __init__(self, loop):
        self.loop = loop

    def start(self):
        self.loop.schedule_at(0.0, self.on_tick)
        self.loop.schedule_in(5.0, self.on_flush)

    def on_tick(self):
        TICKS["count"] += 1

    def on_flush(self):
        TICKS["last"] = "flush"
