"""RACE002 trigger: scheduled closures capturing unstable locals."""


def fan_out(loop, nodes):
    for node in nodes:
        # late binding: every firing sees the final iteration's node
        loop.schedule_in(1.0, lambda: push(node))


def staged(loop):
    version = 1

    def apply():
        return install(version)

    loop.schedule_in(2.0, apply)
    version = 2  # rebound after scheduling: apply() observes 2


def push(node):
    return node


def install(version):
    return version
