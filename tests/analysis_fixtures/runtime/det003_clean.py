"""DET003 clean: every seed chains back to the scenario seed."""

import numpy as np


def build(scenario, width):
    rng = np.random.default_rng(scenario.seed * 7919 + 1)
    derived = scenario.seed + 3
    sketch = CountSketch(width, seed=derived)
    manifest = {"hash_seed": scenario.seed}
    resumed = CountSketch(width, seed=int(manifest["hash_seed"]))
    return rng, sketch, resumed


class CountSketch:
    def __init__(self, width, seed):
        self.width = width
        self.seed = seed
