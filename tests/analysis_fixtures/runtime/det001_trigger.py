"""DET001 trigger: wall-clock reads in a deterministic module."""

import time
from datetime import datetime


def stamp_epoch():
    started = time.time()
    label = datetime.now()
    return started, label
