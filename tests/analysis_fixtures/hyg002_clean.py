"""HYG002 non-trigger: None default, value created in the body."""


def collect(item, bucket=None):
    bucket = [] if bucket is None else bucket
    bucket.append(item)
    return bucket
