"""HYG001 planner-scope trigger: a problem rebuilt per iteration.

Inside /core/controller/ the rule also flags ``*Problem(...)``
constructors in loop bodies — a planner is supposed to keep one warm
problem per shard and patch it via ``resolve_traffic()``.
"""


def solve_round(shards, policy):
    results = {}
    for shard in shards:
        problem = ReplicationProblem(shard.state, mirror_policy=policy)
        results[shard.name] = problem.resolve_traffic(shard.classes)
    return results
