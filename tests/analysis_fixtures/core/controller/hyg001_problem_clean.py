"""HYG001 planner-scope non-trigger: warm problems, pragma'd lazy build.

Problems are constructed once (lazily, under an inline pragma) and
every later round goes through the warm ``resolve_traffic()`` path.
"""


def solve_round(shards, policy):
    results = {}
    for shard in shards:
        if shard.problem is None:
            # repro-lint: allow[HYG001]
            shard.problem = ReplicationProblem(
                shard.state, mirror_policy=policy)
        results[shard.name] = shard.problem.resolve_traffic(
            shard.classes)
    return results
