"""Clean fixture for SKT001: configured seeds, metric-only clock."""
import time


class CountMinSketch:
    def __init__(self, width, depth, *, seed):
        self.width, self.depth, self.seed = width, depth, seed


def build_worker_sketch(width, depth, *, seed, **extra):
    # perf_counter is the sanctioned throughput clock.
    started = time.perf_counter()
    sketch = CountMinSketch(width, depth, seed=seed)
    # A **kwargs splat may carry the seed; trusted, not flagged.
    other = CountMinSketch(width, depth, **extra)
    return started, sketch, other
