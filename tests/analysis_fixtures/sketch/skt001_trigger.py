"""Trigger fixture for SKT001 (2 findings)."""
import time


class CountMinSketch:
    def __init__(self, width, depth, *, seed):
        self.width, self.depth, self.seed = width, depth, seed


def build_worker_sketch(width, depth):
    # Wall-clock window stamp: finding 1.
    window_start = time.time()
    # Constructor without an explicit seed= keyword: finding 2.
    sketch = CountMinSketch(width, depth)
    return window_start, sketch
