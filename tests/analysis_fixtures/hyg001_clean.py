"""HYG001 non-trigger: build once, patch-and-resolve in the loop."""


def sweep(problem, loads):
    problem.build_model()
    results = []
    for load in loads:
        results.append(problem.resolve(max_link_load=load))
    return results
