"""ORD001 trigger half B: the same timestamp expression as alpha —
whichever module's event fires first is decided by seq order."""


def start(loop, epoch):
    loop.schedule_at(epoch * 300.0, rollout)


def rollout():
    pass
