"""ORD001 trigger half A: schedules at epoch * 300.0, as does beta."""


def start(loop, epoch):
    loop.schedule_at(epoch * 300.0, refresh)


def refresh():
    pass
