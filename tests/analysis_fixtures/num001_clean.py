"""NUM001 non-trigger: tolerance-based comparison is the idiom."""

import math

import pytest


def compare(solution, other):
    close = math.isclose(solution.objective_value, 1.25)
    matches = solution.value(other) == pytest.approx(0.0)
    ordered = solution.objective_value <= 2.0
    return close and matches and ordered
