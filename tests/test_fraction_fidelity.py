"""End-to-end fraction fidelity: LP fractions -> ShimConfig -> packet
stream -> observed decision shares.

The paper's pipeline promises that the hash-range compilation realizes
the LP's fractional assignment operationally. This test pushes a
large synthetic stream of uniformly hashed sessions through real
:class:`Shim` instances and checks that the observed per-node decision
shares match the LP's ``p_{c,j}``/``o_{c,j,j'}`` fractions to within
2% — using the observability layer's decision counters for the
aggregate shares.
"""

import random

import pytest

from repro.core import MirrorPolicy, ReplicationProblem
from repro.obs import MetricsRegistry, use_registry
from repro.shim import FiveTuple, Shim
from repro.shim.config import build_replication_configs

SESSIONS = 12_000
TOLERANCE = 0.02


def _random_tuples(rng, count):
    """Uniformly random TCP 5-tuples (hash inputs spread over the
    whole space)."""
    return [FiveTuple(6,
                      rng.getrandbits(32), rng.randrange(1024, 65536),
                      rng.getrandbits(32), 80)
            for _ in range(count)]


@pytest.fixture(scope="module")
def fidelity_run():
    """Solve once, stream once; every test inspects the tallies."""
    # Build the state here (module-scoped) rather than via the
    # function-scoped conftest fixtures.
    from repro.core.inputs import NetworkState
    from repro.topology.routing import shortest_path_routing
    from repro.topology.topology import Topology
    from repro.traffic.classes import TrafficClass

    topology = Topology(
        "line", ["A", "B", "C", "D"],
        [("A", "B"), ("B", "C"), ("C", "D")],
        populations={"A": 4.0, "B": 1.0, "C": 1.0, "D": 2.0})
    routing = shortest_path_routing(topology)
    classes = [
        TrafficClass(name="A->D", source="A", target="D",
                     path=routing.path("A", "D"),
                     num_sessions=1000.0, session_bytes=10_000.0),
    ]
    state = NetworkState.calibrated(topology, classes,
                                    dc_capacity_factor=10.0)
    result = ReplicationProblem(
        state, mirror_policy=MirrorPolicy.datacenter(),
        max_link_load=0.4).solve()
    configs = build_replication_configs(state, result)
    cls = classes[0]
    path = list(cls.path)

    registry = MetricsRegistry()
    with use_registry(registry):
        shims = {node: Shim(configs[node], lambda t: cls.name)
                 for node in state.nids_nodes}
        rng = random.Random(42)
        processed_at = {node: 0 for node in state.nids_nodes}
        claimed = 0
        for tup in _random_tuples(rng, SESSIONS):
            owners = []
            for node in path:
                decision = shims[node].handle(tup, "fwd", 100.0)
                if decision.is_process:
                    owners.append(node)
                elif decision.is_replicate:
                    owners.append(decision.target)
            # Exactly one on-path node claims each session.
            assert len(owners) == 1
            processed_at[owners[0]] += 1
            claimed += 1
    return state, result, cls, processed_at, claimed, registry


def _expected_shares(state, result, cls):
    """Per-node expected processing share: local fraction plus
    everything replicated *to* the node."""
    expected = {node: result.process_fractions[cls.name].get(node, 0.0)
                for node in state.nids_nodes}
    for (node, mirror), fraction in \
            result.offload_fractions[cls.name].items():
        expected[mirror] += fraction
    return expected


def test_lp_fractions_sum_to_one(fidelity_run):
    state, result, cls, _, _, _ = fidelity_run
    total = (sum(result.process_fractions[cls.name].values())
             + sum(result.offload_fractions[cls.name].values()))
    assert total == pytest.approx(1.0, abs=1e-6)


def test_observed_node_shares_match_lp_fractions(fidelity_run):
    state, result, cls, processed_at, claimed, _ = fidelity_run
    assert claimed == SESSIONS
    expected = _expected_shares(state, result, cls)
    for node in state.nids_nodes:
        observed = processed_at[node] / SESSIONS
        assert observed == pytest.approx(expected[node],
                                         abs=TOLERANCE), node


def test_decision_counters_match_lp_aggregates(fidelity_run):
    """The new registry decision counters agree with the LP totals:
    the replicate share equals the summed offload fractions."""
    state, result, cls, _, _, registry = fidelity_run
    processed = registry.counter_value("shim.decision.process")
    replicated = registry.counter_value("shim.decision.replicate")
    # Each session is decided once per on-path node; non-owners that
    # are on-path report ignore. Owners report process or replicate.
    assert processed + replicated == SESSIONS
    offload_total = sum(result.offload_fractions[cls.name].values())
    assert replicated / SESSIONS == pytest.approx(offload_total,
                                                  abs=TOLERANCE)
    process_total = sum(result.process_fractions[cls.name].values())
    assert processed / SESSIONS == pytest.approx(process_total,
                                                 abs=TOLERANCE)


def test_replication_actually_used(fidelity_run):
    """Guard that the scenario exercises the off-path mirror case."""
    _, result, cls, _, _, registry = fidelity_run
    assert sum(result.offload_fractions[cls.name].values()) > 0.05
    assert registry.counter_value("shim.decision.replicate") > 0
