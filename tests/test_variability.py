"""Unit tests for the traffic variability model (Figure 15 input)."""

import numpy as np
import pytest

from repro.traffic import TrafficMatrix, TrafficVariabilityModel


class TestConstruction:
    def test_edges_probs_length_mismatch(self):
        with pytest.raises(ValueError):
            TrafficVariabilityModel([0.0, 1.0], [0.5, 0.5])

    def test_non_increasing_edges_rejected(self):
        with pytest.raises(ValueError):
            TrafficVariabilityModel([0.0, 1.0, 0.5], [0.5, 0.5])

    def test_probs_must_sum_to_one(self):
        with pytest.raises(ValueError):
            TrafficVariabilityModel([0.0, 1.0, 2.0], [0.3, 0.3])

    def test_negative_edges_rejected(self):
        with pytest.raises(ValueError):
            TrafficVariabilityModel([-1.0, 0.0, 1.0], [0.5, 0.5])


class TestDefaultModel:
    def test_mean_factor_near_one(self):
        model = TrafficVariabilityModel.default()
        assert model.mean_factor == pytest.approx(1.0, abs=0.1)

    def test_sampled_factors_positive(self):
        model = TrafficVariabilityModel.default()
        rng = np.random.default_rng(0)
        factors = [model.sample_factor(rng) for _ in range(500)]
        assert all(f > 0 for f in factors)

    def test_sampled_mean_near_one(self):
        model = TrafficVariabilityModel.default()
        rng = np.random.default_rng(1)
        factors = [model.sample_factor(rng) for _ in range(4000)]
        assert np.mean(factors) == pytest.approx(1.0, abs=0.08)

    def test_heavy_tail_exists(self):
        model = TrafficVariabilityModel.default()
        rng = np.random.default_rng(2)
        factors = [model.sample_factor(rng) for _ in range(4000)]
        assert max(factors) > 2.0
        assert min(factors) < 0.5

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            TrafficVariabilityModel.default(sigma=0.0)


class TestFromSamples:
    def test_reproduces_sample_range(self):
        samples = [0.5, 0.8, 1.0, 1.2, 2.0]
        model = TrafficVariabilityModel.from_samples(samples)
        rng = np.random.default_rng(3)
        factors = [model.sample_factor(rng) for _ in range(1000)]
        assert min(factors) >= 0.49
        assert max(factors) <= 2.01

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            TrafficVariabilityModel.from_samples([1.0])

    def test_rejects_negative_samples(self):
        with pytest.raises(ValueError):
            TrafficVariabilityModel.from_samples([-0.5, 1.0])

    def test_constant_samples_handled(self):
        model = TrafficVariabilityModel.from_samples([1.0, 1.0, 1.0])
        rng = np.random.default_rng(4)
        assert model.sample_factor(rng) == pytest.approx(1.0, abs=0.02)


class TestMatrixGeneration:
    def test_generate_count(self):
        model = TrafficVariabilityModel.default()
        mean = TrafficMatrix({("A", "B"): 100.0, ("B", "C"): 50.0})
        rng = np.random.default_rng(5)
        matrices = model.generate_matrices(mean, 10, rng)
        assert len(matrices) == 10

    def test_generated_matrices_vary(self):
        model = TrafficVariabilityModel.default()
        mean = TrafficMatrix({("A", "B"): 100.0})
        rng = np.random.default_rng(6)
        volumes = {m.volume("A", "B")
                   for m in model.generate_matrices(mean, 20, rng)}
        assert len(volumes) > 10

    def test_mean_preserved_in_expectation(self):
        model = TrafficVariabilityModel.default()
        mean = TrafficMatrix({("A", "B"): 100.0})
        rng = np.random.default_rng(7)
        matrices = model.generate_matrices(mean, 500, rng)
        avg = np.mean([m.volume("A", "B") for m in matrices])
        assert avg == pytest.approx(100.0, rel=0.12)

    def test_count_must_be_positive(self):
        model = TrafficVariabilityModel.default()
        mean = TrafficMatrix({("A", "B"): 1.0})
        with pytest.raises(ValueError):
            model.generate_matrices(mean, 0, np.random.default_rng(0))

    def test_deterministic_given_rng(self):
        model = TrafficVariabilityModel.default()
        mean = TrafficMatrix({("A", "B"): 100.0, ("C", "D"): 10.0})
        a = model.generate_matrices(mean, 3, np.random.default_rng(8))
        b = model.generate_matrices(mean, 3, np.random.default_rng(8))
        for ma, mb in zip(a, b):
            assert ma.volume("A", "B") == mb.volume("A", "B")
            assert ma.volume("C", "D") == mb.volume("C", "D")
