#!/usr/bin/env python
"""Capacity planning: where to put the NIDS cluster and how big.

The scenario from Section 8.2: an administrator is adding a compute
cluster to an existing NIDS deployment (here: the Geant backbone) and
must pick (1) the attachment PoP, (2) the cluster size, and (3) how
much replication link load to allow. This script sweeps all three and
prints a recommendation, reproducing the paper's findings:

- the placement strategy barely matters ("observed traffic" is best),
- returns diminish beyond ~8-10x capacity,
- 40% link utilization already gives near-optimal load reduction.

Run:  python examples/datacenter_provisioning.py [topology]
"""

import sys

from repro import (
    MirrorPolicy,
    NetworkState,
    ReplicationProblem,
    builtin_topology,
    gravity_traffic,
    place_datacenter,
)
from repro.core.placement import PLACEMENT_STRATEGIES


def solve(topology, classes, dc_factor, anchor, max_link_load):
    state = NetworkState.calibrated(topology, classes,
                                    dc_capacity_factor=dc_factor,
                                    dc_anchor=anchor)
    problem = ReplicationProblem(
        state, mirror_policy=MirrorPolicy.datacenter(),
        max_link_load=max_link_load)
    return problem.solve()


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "geant"
    topology = builtin_topology(name)
    classes = gravity_traffic(topology)
    print(f"provisioning a NIDS cluster for {name} "
          f"({topology.num_nodes} PoPs)\n")

    # --- 1. placement -------------------------------------------------
    print("placement strategy sweep (DC 10x, MaxLinkLoad 0.4):")
    placements = {}
    for strategy in PLACEMENT_STRATEGIES:
        anchor = place_datacenter(topology, classes, strategy=strategy)
        result = solve(topology, classes, 10.0, anchor, 0.4)
        placements[strategy] = (anchor, result.load_cost)
        print(f"  {strategy:>12s} -> attach at {anchor:>10s}, "
              f"max load {result.load_cost:.3f}")
    best_strategy = min(placements, key=lambda s: placements[s][1])
    anchor = placements["observed"][0]
    print(f"  spread is small; using the paper's default "
          f"('observed', i.e. {anchor})\n")

    # --- 2. capacity --------------------------------------------------
    print("cluster capacity sweep (MaxLinkLoad 0.4):")
    previous = None
    knee = None
    for factor in (1, 2, 4, 6, 8, 10, 13, 16):
        result = solve(topology, classes, float(factor), anchor, 0.4)
        marker = ""
        if previous is not None and previous - result.load_cost < 0.005:
            marker = "   <- diminishing returns"
            if knee is None:
                knee = factor
        print(f"  {factor:>3d}x -> max load {result.load_cost:.3f}"
              f"{marker}")
        previous = result.load_cost
    knee = knee or 10
    print(f"  recommendation: ~{knee}x the single-node capacity\n")

    # --- 3. link budget -----------------------------------------------
    print(f"replication link budget sweep (DC {knee}x):")
    for budget in (0.1, 0.2, 0.3, 0.4, 0.6, 0.8):
        result = solve(topology, classes, float(knee), anchor, budget)
        print(f"  MaxLinkLoad {budget:.1f} -> max load "
              f"{result.load_cost:.3f}, DC load "
              f"{result.dc_load():.3f}")
    print("  recommendation: 0.4 (the paper's knee) — administrators "
          "need not fear the replication traffic")


if __name__ == "__main__":
    main()
