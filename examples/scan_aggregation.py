#!/usr/bin/env python
"""Distributed scan detection via aggregation (Sections 2, 6, 7.3).

Scan detection counts the distinct destinations each source contacts —
under pure on-path distribution it is stuck at the ingress gateway.
This script distributes it with the paper's source-level split:

1. solves the Section 6 LP on Internet2 (trading report traffic
   against load balance with the weight beta);
2. compiles per-source hash ranges into shim configs;
3. replays a trace with injected scanners; every on-path node counts
   only its assigned sources with a local threshold of 0;
4. the gateway aggregators apply the real threshold k and flag exactly
   the same scanners a centralized detector would — with far better
   load balance.

Also demonstrates the Figure 8 example: why the source-level split
beats flow-level (over-counting) and destination-level (report size).

Run:  python examples/scan_aggregation.py
"""

from repro import builtin_topology, gravity_traffic, NetworkState
from repro.core import AggregationProblem, ingress_result
from repro.nids import (
    ScanDetector,
    SplitStrategy,
    aggregate_reports,
    report_cost_record_hops,
)
from repro.shim import build_aggregation_configs
from repro.simulation import Emulation, TraceGenerator
from repro.simulation.tracegen import TraceSpec

THRESHOLD = 15  # flag sources contacting more than k destinations


def figure8_demo() -> None:
    print("Figure 8 demo: three ways to split scan counting")
    flows = [(src, dst) for src in (1, 2) for dst in (11, 12, 13, 14)
             for _ in range(2)]  # 2 flows per src-dst pair
    hops = {"N2": 1, "N3": 2, "N4": 1, "N5": 2}

    # Source-level split: N2/N4 own s1, N3/N5 own s2.
    detectors = {n: ScanDetector() for n in hops}
    for src, dst in flows:
        path_nodes = ("N2", "N3") if dst in (11, 12) else ("N4", "N5")
        node = path_nodes[0] if src == 1 else path_nodes[1]
        detectors[node].observe_flow(src, dst)
    reports = [d.source_count_report(n) for n, d in detectors.items()]
    counts = aggregate_reports(SplitStrategy.SOURCE_LEVEL, reports)
    record_hops, _ = report_cost_record_hops(reports, hops)
    print(f"  source-level: counts {counts}, "
          f"cost {record_hops:.0f} record-hops (paper: 6)")

    # Destination-level split: each node owns one destination.
    detectors = {n: ScanDetector() for n in hops}
    owner = {11: "N2", 12: "N3", 13: "N4", 14: "N5"}
    for src, dst in flows:
        detectors[owner[dst]].observe_flow(src, dst)
    reports = [d.source_count_report(n) for n, d in detectors.items()]
    counts = aggregate_reports(SplitStrategy.SOURCE_LEVEL, reports)
    record_hops, _ = report_cost_record_hops(reports, hops)
    print(f"  dest-level:   counts {counts}, "
          f"cost {record_hops:.0f} record-hops (paper: 12)")
    print()


def main() -> None:
    figure8_demo()

    topology = builtin_topology("internet2")
    classes = gravity_traffic(topology)
    state = NetworkState.calibrated(topology, classes)

    # Without aggregation, Scan runs at each ingress: imbalanced.
    baseline = ingress_result(state)
    print(f"without aggregation: max/avg load "
          f"{baseline.load_imbalance():.2f}")

    # The Section 6 LP at a balanced beta.
    problem = AggregationProblem(state)
    beta = problem.suggested_beta()
    result = AggregationProblem(state, beta=beta).solve()
    print(f"with aggregation:    max/avg load "
          f"{result.load_imbalance():.2f} "
          f"(comm cost {result.comm_cost:,.0f} byte-hops)")

    # Operational check: distributed counting == centralized counting.
    configs = build_aggregation_configs(state, result)
    spec = TraceSpec(total_sessions=4000, scanner_count=5,
                     scanner_fanout=3 * THRESHOLD)
    generator = TraceGenerator(topology.nodes, classes, spec=spec,
                               seed=99)
    sessions = generator.generate(with_payloads=False)
    emulation = Emulation(state, configs, generator.classifier)
    report = emulation.run_scan(sessions, threshold=THRESHOLD)

    flagged = sorted(src for alerts in
                     report.distributed_alerts.values()
                     for src in alerts)
    print(f"\nreplayed {len(sessions)} flows with 5 injected scanners")
    print(f"  distributed detection flagged {len(flagged)} sources")
    print(f"  semantically equivalent to centralized: "
          f"{report.semantically_equivalent}")
    print(f"  report traffic: {report.record_hops:,.0f} record-hops "
          f"({report.byte_hops:,.0f} byte-hops)")


if __name__ == "__main__":
    main()
