#!/usr/bin/env python
"""Stateful detection under routing asymmetry (Sections 2, 5, 8.3).

"Hot-potato" routing sends the forward and reverse flows of sessions
over different paths, so no single on-path NIDS sees both sides and
stateful analysis silently fails. This script:

1. synthesizes an asymmetric routing configuration for Internet2 with
   a target forward/reverse overlap of 0.3;
2. shows the Ingress-only deployment missing most sessions;
3. solves the Section 5 LP with a datacenter and MaxLinkLoad 0.4;
4. compiles the solution to per-node shim configs, replays a packet
   trace through them, and confirms the *measured* miss rate drops to
   (near) zero — detection restored by replication.

Run:  python examples/asymmetric_routing.py
"""

import numpy as np

from repro import NetworkState, builtin_topology
from repro.core import SplitTrafficProblem, ingress_split_result
from repro.experiments.common import asymmetric_classes, setup_topology
from repro.shim import build_split_configs
from repro.simulation import Emulation, TraceGenerator
from repro.simulation.tracegen import TraceSpec
from repro.topology import AsymmetricRoutingModel

THETA = 0.3  # target expected Jaccard overlap between fwd/rev paths


def main() -> None:
    setup = setup_topology("internet2")
    model = AsymmetricRoutingModel(setup.topology, setup.routing)
    rng = np.random.default_rng(42)
    classes = asymmetric_classes(setup, model, THETA, rng)
    realized = np.mean([1.0 if c.is_symmetric else 0.0
                        for c in classes])
    print(f"asymmetric routing over internet2, target overlap "
          f"{THETA}, {len(classes)} bidirectional classes")

    state = NetworkState.calibrated(setup.topology, classes,
                                    dc_capacity_factor=10.0)

    # --- today's deployment fails silently ---------------------------
    ingress = ingress_split_result(state)
    print(f"\nIngress-only:   predicted miss rate "
          f"{ingress.miss_rate:.1%} (load {ingress.load_cost:.2f})")

    # --- on-path distribution can only use common nodes --------------
    on_path = SplitTrafficProblem(state, allow_offload=False).solve()
    print(f"Path-only:      predicted miss rate "
          f"{on_path.miss_rate:.1%} (load {on_path.load_cost:.2f})")

    # --- the paper's fix: replicate split sessions to the DC ---------
    replicated = SplitTrafficProblem(state, max_link_load=0.4).solve()
    print(f"DC replication: predicted miss rate "
          f"{replicated.miss_rate:.1%} (load "
          f"{replicated.load_cost:.2f})")

    # --- verify operationally with a packet-level emulation ----------
    print("\nreplaying a trace through the compiled shim configs...")
    configs = build_split_configs(state, replicated)
    generator = TraceGenerator(
        state.topology.nodes, classes,
        spec=TraceSpec(total_sessions=3000), seed=7)
    sessions = generator.generate(with_payloads=False)
    emulation = Emulation(state, configs, generator.classifier)
    report = emulation.run_stateful(sessions)
    print(f"  {report.total_sessions} sessions replayed, "
          f"{report.covered_sessions} fully observed at one location")
    print(f"  measured miss rate: {report.miss_rate:.2%} "
          f"(LP predicted {replicated.miss_rate:.2%})")
    print(f"  replicated bytes: {report.replicated_bytes:,.0f}")


if __name__ == "__main__":
    main()
