#!/usr/bin/env python
"""Operating the controller: node failure, re-solve, safe rollout.

The network-wide controller (Figure 6) re-optimizes when routing or
traffic changes. This script exercises the operational loop the paper
discusses in Section 9:

1. solve the replication LP for Geant with a datacenter;
2. fail the most loaded interior PoP — classes through it reroute,
   classes terminating at it are lost;
3. re-solve on the surviving network;
4. roll the new configuration out with the paper's overlap transition
   (old + new rules honored during the transient, so coverage never
   drops), and contrast with two-phase commit when a node is down.

Run:  python examples/failure_recovery.py
"""

from repro import builtin_topology, gravity_traffic, NetworkState
from repro.core import (
    CommitOutcome,
    MirrorPolicy,
    OverlapTransition,
    Participant,
    ReplicationProblem,
    TwoPhaseCommit,
    cascade_risk,
    fail_node,
)
from repro.shim import build_replication_configs


def main() -> None:
    topology = builtin_topology("geant")
    classes = gravity_traffic(topology)
    state = NetworkState.calibrated(topology, classes,
                                    dc_capacity_factor=10.0)

    # --- steady state --------------------------------------------------
    problem = ReplicationProblem(
        state, mirror_policy=MirrorPolicy.datacenter(),
        max_link_load=0.4)
    before = problem.solve()
    print(f"steady state on geant: max load {before.load_cost:.3f}")

    risky = cascade_risk(state)
    print(f"single-node failures the routing cannot absorb: "
          f"{risky or 'none'}")

    # --- fail the busiest interior node --------------------------------
    loads = {n: l for n, l in before.node_loads["cpu"].items()
             if n != state.dc_node}
    victim = max(loads, key=loads.get)
    new_state, impact = fail_node(state, victim)
    print(f"\nfailing {victim}: {len(impact.rerouted_classes)} classes "
          f"rerouted, {len(impact.dropped_classes)} dropped "
          f"({impact.lost_fraction:.1%} of sessions terminated there)")

    after = ReplicationProblem(
        new_state, mirror_policy=MirrorPolicy.datacenter(),
        max_link_load=0.4).solve()
    print(f"re-solved surviving network: max load "
          f"{after.load_cost:.3f} "
          f"(solve took {after.stats.solve_seconds:.3f}s)")

    # --- safe rollout ----------------------------------------------------
    print("\nrolling out the new configuration with overlap "
          "semantics:")
    old_configs = {n: c for n, c in
                   build_replication_configs(state, before).items()
                   if n in new_state.nids_nodes}
    new_configs = build_replication_configs(new_state, after)
    transition = OverlapTransition(old_configs, new_configs)
    transition.begin()
    nodes = sorted(new_configs)
    for i, node in enumerate(nodes):
        transition.acknowledge(node)
        if i in (0, len(nodes) // 2, len(nodes) - 1):
            active = transition.active_configs()
            rules = sum(c.num_rules for c in active.values())
            print(f"  after {i + 1:>2d}/{len(nodes)} acks: "
                  f"phase={transition.phase.value:<12s} "
                  f"total installed rules={rules}")

    # --- why not two-phase commit? ---------------------------------------
    print("\ntwo-phase commit with one unreachable shim:")
    participants = [Participant(n, fails_prepare=(n == nodes[0]))
                    for n in nodes]
    outcome = TwoPhaseCommit(participants).execute(new_configs)
    print(f"  outcome: {outcome.value} — a single laggard blocks the "
          "whole rollout,")
    print("  which is why the paper prefers the domain-specific "
          "overlap transition.")


if __name__ == "__main__":
    main()
