#!/usr/bin/env python
"""The operator's calibration pipeline: profile -> classes -> optimize.

The formulations need per-class resource footprints ``F_c^r``
(Section 3, input 2). The paper gets them "via NIDS vendors'
datasheets or ... offline benchmarks". This script runs that pipeline
end-to-end:

1. benchmark a Signature engine offline on sample traffic batches and
   fit its cost model (work = a * sessions + b * bytes);
2. build per-application traffic classes (HTTP/HTTPS/SMTP/DNS/IRC —
   Section 3's class granularity) and derive each class's footprint
   from the fitted model and its mean session size;
3. solve the replication LP on the profiled classes and show how the
   heavier protocols dominate the assignment.

Run:  python examples/profiling_pipeline.py
"""

from repro import (
    MirrorPolicy,
    NetworkState,
    ReplicationProblem,
    builtin_topology,
)
from repro.nids import SignatureEngine, apply_cost_model, profile_engine
from repro.simulation import Session, TraceGenerator
from repro.simulation.tracegen import TraceSpec
from repro.traffic import (
    DEFAULT_APPLICATION_MIX,
    classes_with_applications,
    gravity_traffic_matrix,
)


def benchmark_batches(topology, classes, class_ports):
    """Three benchmark batches with different session/byte mixes."""
    batches = []
    for sessions, payload in ((80, 60), (200, 250), (140, 40)):
        spec = TraceSpec(total_sessions=sessions,
                         payload_bytes=payload)
        generator = TraceGenerator(topology.nodes, classes, spec=spec,
                                   seed=payload,
                                   class_ports=class_ports)
        batches.append(generator.generate(with_payloads=True))
    return batches


def main() -> None:
    topology = builtin_topology("internet2")
    matrix = gravity_traffic_matrix(topology)
    classes = classes_with_applications(topology, matrix)
    print(f"{len(classes)} application-level classes "
          f"({len(DEFAULT_APPLICATION_MIX)} apps x "
          f"{len(classes) // len(DEFAULT_APPLICATION_MIX)} pairs)\n")

    # --- 1. offline engine benchmark ---------------------------------
    class_ports = {
        cls.name: app.port
        for cls in classes
        for app in DEFAULT_APPLICATION_MIX
        if cls.name.endswith("/" + app.name)
    }
    aggregate = classes[:len(DEFAULT_APPLICATION_MIX)]  # sample paths
    model = profile_engine(
        SignatureEngine,
        benchmark_batches(topology, aggregate, class_ports))
    print("fitted Signature engine cost model:")
    print(f"  per-session: {model.per_session:.1f} work units")
    print(f"  per-byte:    {model.per_byte:.3f} work units")
    print(f"  fit residual: {model.residual:.2g}\n")

    # --- 2. derive per-class footprints -------------------------------
    profiled = apply_cost_model(classes, model, payload_fraction=0.9)
    print("derived footprints F_c (per session):")
    seen = set()
    for cls in profiled:
        app = cls.name.split("/")[1]
        if app in seen:
            continue
        seen.add(app)
        print(f"  {app:>6s}: {cls.footprint('cpu'):8.0f} "
              f"(mean session {cls.session_bytes:,.0f} B)")

    # --- 3. optimize on the profiled inputs ----------------------------
    state = NetworkState.calibrated(topology, profiled,
                                    dc_capacity_factor=10.0)
    result = ReplicationProblem(
        state, mirror_policy=MirrorPolicy.datacenter(),
        max_link_load=0.4).solve()
    print(f"\nreplication LP on profiled classes: "
          f"max load {result.load_cost:.3f} "
          f"({result.stats.num_variables} variables, "
          f"{result.stats.solve_seconds:.3f}s)")

    # Which applications get offloaded to the cluster?
    offloaded = {}
    for cls in profiled:
        fraction = result.replicated_fraction(cls.name)
        app = cls.name.split("/")[1]
        work = fraction * cls.footprint("cpu") * cls.num_sessions
        offloaded[app] = offloaded.get(app, 0.0) + work
    total = sum(offloaded.values()) or 1.0
    print("\nwork offloaded to the datacenter, by application:")
    for app, work in sorted(offloaded.items(), key=lambda kv: -kv[1]):
        print(f"  {app:>6s}: {work / total:6.1%}")


if __name__ == "__main__":
    main()
