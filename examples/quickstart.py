#!/usr/bin/env python
"""Quickstart: optimize a network-wide NIDS deployment in ~30 lines.

Builds the Internet2 topology with gravity-model traffic, attaches a
10x datacenter cluster, and compares today's Ingress-only deployment
against on-path distribution and the paper's replication architecture.

Run:  python examples/quickstart.py
"""

from repro import (
    MirrorPolicy,
    NetworkState,
    ReplicationProblem,
    builtin_topology,
    gravity_traffic,
)
from repro.core import ingress_result


def main() -> None:
    # 1. The network and its traffic (Section 8.2 setup).
    topology = builtin_topology("internet2")
    classes = gravity_traffic(topology)  # 8M sessions, gravity model
    state = NetworkState.calibrated(topology, classes,
                                    dc_capacity_factor=10.0)
    print(f"network: {topology.name}, {topology.num_nodes} PoPs, "
          f"{len(classes)} traffic classes")
    print(f"datacenter attached at the busiest PoP, 10x capacity\n")

    # 2. Today's deployment: everything at the ingress gateway.
    ingress = ingress_result(state)
    print(f"Ingress-only max load:        {ingress.load_cost:.3f}")

    # 3. On-path distribution [Sekar et al., CoNEXT'10].
    on_path = ReplicationProblem(
        state, mirror_policy=MirrorPolicy.none()).solve()
    print(f"Path, no replicate max load:  {on_path.load_cost:.3f}")

    # 4. This paper: on-path + replication to the datacenter, keeping
    #    every link under 40% utilization.
    replicated = ReplicationProblem(
        state, mirror_policy=MirrorPolicy.datacenter(),
        max_link_load=0.4).solve()
    print(f"Path, replicate max load:     {replicated.load_cost:.3f}")
    print(f"  (solved {replicated.stats.num_variables} variables in "
          f"{replicated.stats.solve_seconds:.3f}s)\n")

    gain = ingress.load_cost / replicated.load_cost
    print(f"replication reduces the peak NIDS load {gain:.1f}x")

    # 5. Where did the work go?
    print("\nper-node load (replicated architecture):")
    for node, load in sorted(replicated.node_loads["cpu"].items()):
        bar = "#" * int(load * 100)
        print(f"  {node:>5s}  {load:6.3f}  {bar}")


if __name__ == "__main__":
    main()
